package sim

import "testing"

func TestGroupCancelAll(t *testing.T) {
	s := New()
	fired := 0
	var g Group
	for i := 0; i < 5; i++ {
		g.Track(s, s.Schedule(float64(i+1), "ev", func(s *Simulator) { fired++ }))
	}
	// One unrelated event must survive the group cancel.
	s.Schedule(10, "other", func(s *Simulator) { fired += 100 })

	if n := g.CancelAll(s); n != 5 {
		t.Fatalf("CancelAll cancelled %d events, want 5", n)
	}
	if g.Len() != 0 {
		t.Fatalf("group not emptied: %d handles", g.Len())
	}
	s.RunUntilIdle()
	if fired != 100 {
		t.Fatalf("fired=%d, want only the unrelated event (100)", fired)
	}
}

func TestGroupStaleHandlesAreSafe(t *testing.T) {
	s := New()
	var g Group
	fired := 0
	g.Track(s, s.Schedule(1, "a", func(s *Simulator) { fired++ }))
	s.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("fired=%d", fired)
	}
	// The event ran; its struct may be recycled for a new event. Cancelling
	// the group must not touch the recycled occurrence.
	s.Schedule(2, "b", func(s *Simulator) { fired++ })
	if n := g.CancelAll(s); n != 0 {
		t.Fatalf("CancelAll cancelled %d stale events, want 0", n)
	}
	s.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("fired=%d, want 2 (recycled event must still run)", fired)
	}
}

func TestGroupPrunesDeadHandles(t *testing.T) {
	s := New()
	var g Group
	// Schedule and fire many events one at a time; the group must not grow
	// with the total ever tracked.
	for i := 0; i < 1000; i++ {
		g.Track(s, s.After(0, "tick", func(s *Simulator) {}))
		s.RunUntilIdle()
	}
	if g.Len() >= 64 {
		t.Fatalf("group holds %d handles after all events fired; pruning failed", g.Len())
	}
}

func TestAlive(t *testing.T) {
	s := New()
	h := s.Schedule(1, "ev", func(s *Simulator) {})
	if !s.Alive(h) {
		t.Fatal("pending handle not alive")
	}
	if s.Alive(Handle{}) {
		t.Fatal("zero handle alive")
	}
	s.RunUntilIdle()
	if s.Alive(h) {
		t.Fatal("fired handle still alive")
	}
	h2 := s.Schedule(2, "ev2", func(s *Simulator) {})
	s.Cancel(h2)
	if s.Alive(h2) {
		t.Fatal("cancelled handle still alive")
	}
}
