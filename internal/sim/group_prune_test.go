package sim

import "testing"

// TestGroupTrackManyLiveHandles is the regression test for the fixed-64
// prune threshold: a group holding thousands of live handles (a chaos
// fleet's worth of in-flight work) used to rescan the whole slice on
// every Track — O(n²). With the adaptive threshold the number of prune
// passes grows logarithmically, so each handle is rescanned O(1) times.
func TestGroupTrackManyLiveHandles(t *testing.T) {
	s := New()
	var g Group
	const n = 10_000
	for i := 0; i < n; i++ {
		// Far-future events: every tracked handle stays live.
		g.Track(s, s.Schedule(1e6+float64(i), "live", func(*Simulator) {}))
	}
	if g.Len() != n {
		t.Fatalf("live handles lost: Len=%d, want %d", g.Len(), n)
	}
	// Doubling from 64 reaches 10k in ~8 passes; 15 leaves headroom while
	// still failing loudly if the threshold regresses to fixed (which
	// needs ~10k-64 passes).
	if g.prunes > 15 {
		t.Fatalf("prune passes = %d for %d live handles; adaptive threshold regressed", g.prunes, n)
	}
	if got := g.CancelAll(s); got != n {
		t.Fatalf("CancelAll cancelled %d, want %d", got, n)
	}
}

// TestGroupPruneThresholdShrinks pins the other half of the adaptation:
// after a prune finds few live handles the threshold falls back toward
// the 64 floor, so a group that was briefly large does not stop pruning.
func TestGroupPruneThresholdShrinks(t *testing.T) {
	s := New()
	var g Group
	// Grow the threshold with 1000 live handles.
	var hs []Handle
	for i := 0; i < 1000; i++ {
		h := s.Schedule(1e6, "live", func(*Simulator) {})
		hs = append(hs, h)
		g.Track(s, h)
	}
	for _, h := range hs {
		s.Cancel(h)
	}
	// Track dead handles until the next prune; it must find zero live and
	// reset the threshold to the floor.
	before := g.prunes
	for i := 0; i < 3000 && g.prunes == before; i++ {
		g.Track(s, Handle{})
	}
	if g.prunes == before {
		t.Fatal("no prune happened while tracking dead handles")
	}
	if g.pruneAt != 64 {
		t.Fatalf("pruneAt=%d after an all-dead prune, want 64", g.pruneAt)
	}
}
