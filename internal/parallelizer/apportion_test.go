package parallelizer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/perf"
)

func TestApportionMinMaxBasics(t *testing.T) {
	// Equal costs split evenly.
	got := apportionMinMax(10, []float64{1, 1})
	if got[0]+got[1] != 10 || got[0] != 5 {
		t.Fatalf("equal costs: %v", got)
	}
	// A stage 10x more expensive per layer gets ~1/10 the layers.
	got = apportionMinMax(22, []float64{1, 10})
	if got[0]+got[1] != 22 {
		t.Fatalf("sum broken: %v", got)
	}
	if got[1] > 4 {
		t.Fatalf("expensive stage overloaded: %v", got)
	}
	// A stage whose single-layer cost exceeds the balanced maximum gets
	// zero layers — the key behaviour enabling P100 demotion.
	got = apportionMinMax(10, []float64{1, 100})
	if got[1] != 0 {
		t.Fatalf("hopeless stage should get 0 layers: %v", got)
	}
	// Degenerate inputs.
	if out := apportionMinMax(5, nil); len(out) != 0 {
		t.Fatalf("nil costs: %v", out)
	}
	if out := apportionMinMax(0, []float64{1}); out[0] != 0 {
		t.Fatalf("zero layers: %v", out)
	}
}

func TestApportionMinMaxProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		total := 1 + rng.Intn(100)
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = 0.1 + rng.Float64()*10
		}
		out := apportionMinMax(total, costs)
		// Conservation.
		sum := 0
		for _, l := range out {
			if l < 0 {
				return false
			}
			sum += l
		}
		if sum != total {
			return false
		}
		// Local optimality: no single-layer move may strictly lower the max.
		maxCost := func(a []int) float64 {
			m := 0.0
			for i, l := range a {
				if c := float64(l) * costs[i]; c > m {
					m = c
				}
			}
			return m
		}
		base := maxCost(out)
		for i := range out {
			if out[i] == 0 {
				continue
			}
			for j := range out {
				if i == j {
					continue
				}
				trial := append([]int(nil), out...)
				trial[i]--
				trial[j]++
				if maxCost(trial) < base-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestForceInstances(t *testing.T) {
	est := perf.New(model.Llama13B)
	wl := DefaultWorkload()
	for _, d := range []int{1, 2, 4} {
		opts := DefaultOptions()
		opts.ForceInstances = d
		plan, err := Search(hardware.PaperCluster(), est, wl, opts)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if len(plan.Instances) != d {
			t.Fatalf("ForceInstances=%d yielded %d instances", d, len(plan.Instances))
		}
	}
	// Forcing an impossible split errors.
	opts := DefaultOptions()
	opts.ForceInstances = 3 // 4 GPUs of each type are not divisible by 3
	if _, err := Search(hardware.PaperCluster(), est, wl, opts); err == nil {
		t.Fatal("ForceInstances=3 should be infeasible on the paper cluster")
	}
}

func TestCacheToleranceSelectsCapacity(t *testing.T) {
	// With zero tolerance the search may pick a lower-latency but
	// cache-poorer grouping; with generous tolerance it must pick at
	// least as much cache.
	est := perf.New(model.Llama70B)
	wl := DefaultWorkload()
	strict := DefaultOptions()
	strict.CacheTolerance = 0
	loose := DefaultOptions()
	loose.CacheTolerance = 0.5

	planStrict, err := Search(hardware.PaperCluster(), est, wl, strict)
	if err != nil {
		t.Fatal(err)
	}
	planLoose, err := Search(hardware.PaperCluster(), est, wl, loose)
	if err != nil {
		t.Fatal(err)
	}
	if planLoose.CacheCapacity < planStrict.CacheCapacity {
		t.Fatalf("looser tolerance reduced cache: %d < %d",
			planLoose.CacheCapacity, planStrict.CacheCapacity)
	}
	if planStrict.Objective > planLoose.Objective+1e-9 {
		t.Fatalf("strict tolerance must pick the lowest objective: %g > %g",
			planStrict.Objective, planLoose.Objective)
	}
}

// BenchmarkApportion measures the layer-apportionment hot path of the
// exclusion loop.
func BenchmarkApportion(b *testing.B) {
	costs := []float64{1.0, 2.4, 24.5}
	for i := 0; i < b.N; i++ {
		_ = apportionMinMax(80, costs)
	}
}

func TestExtendedSearchNeverWorse(t *testing.T) {
	est13 := perf.New(model.Llama13B)
	est70 := perf.New(model.Llama70B)
	wl := DefaultWorkload()
	for _, tc := range []struct {
		name string
		est  *perf.Estimator
	}{{"Llama-13B", est13}, {"Llama-70B", est70}} {
		base, err := Search(hardware.PaperCluster(), tc.est, wl, DefaultOptions())
		if err != nil {
			t.Fatalf("%s base: %v", tc.name, err)
		}
		opts := DefaultOptions()
		opts.ExtendedSearch = true
		ext, err := Search(hardware.PaperCluster(), tc.est, wl, opts)
		if err != nil {
			t.Fatalf("%s extended: %v", tc.name, err)
		}
		t.Logf("%s: objective %.3f -> %.3f, attention workers %d -> %d",
			tc.name, base.Objective, ext.Objective,
			base.NumAttentionWorkers(), ext.NumAttentionWorkers())
		// The extended candidate set is a superset, so it can only match
		// or improve the modeled objective (modulo the cache-tolerance
		// tiebreak, which trades within the band).
		if ext.Objective > base.Objective*(1+DefaultOptions().CacheTolerance)+1e-9 {
			t.Errorf("%s: extended search worsened objective beyond tolerance: %g vs %g",
				tc.name, ext.Objective, base.Objective)
		}
	}
}

func TestExtendedSearchDropsSlowTierFor13B(t *testing.T) {
	// For Llama-13B on the paper cluster, the comm-aware model prefers
	// A100-only dense compute; the extension should demote the 3090s that
	// the Cp heuristic keeps.
	opts := DefaultOptions()
	opts.ExtendedSearch = true
	plan, err := Search(hardware.PaperCluster(), perf.New(model.Llama13B), DefaultWorkload(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumAttentionWorkers() < 8 {
		t.Errorf("extended search kept %d attention workers, expected >=8 (3090s + P100s demoted)",
			plan.NumAttentionWorkers())
	}
}
