// Package parallelizer implements Hetis' primary-worker parallelism search
// (§4.1): the hierarchical exploration that decides which GPUs run the
// dense modules (primary workers), how the model is partitioned over them
// with data/pipeline/tensor parallelism, and which GPUs are demoted to the
// shared Attention-worker pool.
//
// The search follows the paper's three levels:
//
//  1. Device grouping — GPUs of every type are divided evenly across
//     candidate data-parallel serving instances; groupings that cannot hold
//     the KV cache of the expected decoding load are filtered out.
//  2. Pipeline partition — within a group, GPUs of one type form one
//     unified pipeline stage; layers are apportioned to minimize Cp, the
//     maximum per-stage cost under perfect scaling. Then the exclusion
//     heuristic removes GPUs from the lowest-end type upward while
//     Cp(σ−κ)/Cp(σ) ≤ 1+Δ, sending them to the Attention-worker pool.
//  3. Intra-stage search — each unified stage explores tensor×pipeline
//     combinations of its devices, costed with the α-β communication model
//     and the roofline compute model (as HexGen does for C_comm + C_comp).
package parallelizer

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/perf"
)

// Workload describes the request distribution R the plan must serve.
type Workload struct {
	// DecodeBatch is the expected number of concurrently decoding
	// requests across the whole cluster.
	DecodeBatch int
	// AvgContext is the expected context length during decoding.
	AvgContext int
	// PrefillBatch is the typical number of prompts prefilled together.
	PrefillBatch int
	// AvgPrompt is the expected prompt length.
	AvgPrompt int
	// AvgOutput is the expected number of generated tokens; it weights
	// decode cost against prefill cost in the objective.
	AvgOutput int
}

// Validate reports workload errors.
func (w Workload) Validate() error {
	if w.DecodeBatch <= 0 || w.AvgContext <= 0 || w.PrefillBatch <= 0 || w.AvgPrompt <= 0 || w.AvgOutput <= 0 {
		return fmt.Errorf("parallelizer: workload fields must be positive: %+v", w)
	}
	return nil
}

// DefaultWorkload is a moderate chat-serving operating point.
func DefaultWorkload() Workload {
	return Workload{DecodeBatch: 64, AvgContext: 600, PrefillBatch: 4, AvgPrompt: 400, AvgOutput: 240}
}

// Options tunes the search.
type Options struct {
	// Delta is the exclusion threshold: a GPU is demoted to Attention
	// worker if removing it raises Cp by at most this fraction. The paper
	// defaults to 0.05.
	Delta float64
	// MemHeadroom is the fraction of device memory reserved for
	// activations and fragmentation (not weights, not KV cache).
	MemHeadroom float64
	// MinCacheFraction requires the plan to keep at least this fraction
	// of the estimated KV demand of R as cache capacity.
	MinCacheFraction float64
	// CacheTolerance picks, among groupings whose objective is within
	// (1+CacheTolerance) of the best, the one with the largest KV
	// capacity. Latency within tolerance, serving capacity maximized.
	CacheTolerance float64
	// ExtendedSearch additionally evaluates tier-suffix primary sets (only
	// the top k GPU tiers serve dense modules) under the full comm-aware
	// cost. The paper's Cp criterion is communication-blind by design
	// (§4.1) and can keep a slow tier whose pipeline stage the comm-aware
	// model would drop; this extension closes that gap. Off by default to
	// stay faithful to the paper's heuristic.
	ExtendedSearch bool
	// ForceInstances, when positive, restricts the search to exactly that
	// data-parallel instance count (used by ablations).
	ForceInstances int
}

// DefaultOptions mirrors the paper (Δ = 0.05).
func DefaultOptions() Options {
	return Options{Delta: 0.05, MemHeadroom: 0.08, MinCacheFraction: 1.0, CacheTolerance: 0.15}
}

// Stage is one pipeline stage of primary workers: devices of a single GPU
// type arranged as a TP×PP grid holding Layers transformer layers.
type Stage struct {
	Spec    hardware.GPUSpec
	Devices []hardware.DeviceID
	TP      int
	PP      int
	Layers  int
}

// Instance is one data-parallel serving instance.
type Instance struct {
	Stages []Stage
	// AttentionWorkers are this instance's pooled devices: they hold KV
	// cache and compute decode attention but no dense modules.
	AttentionWorkers []hardware.DeviceID
}

// PrimaryDevices lists all primary-worker devices of the instance.
func (in Instance) PrimaryDevices() []hardware.DeviceID {
	var out []hardware.DeviceID
	for _, s := range in.Stages {
		out = append(out, s.Devices...)
	}
	return out
}

// AllDevices lists every device of the instance.
func (in Instance) AllDevices() []hardware.DeviceID {
	return append(in.PrimaryDevices(), in.AttentionWorkers...)
}

// Plan is the output of the search.
type Plan struct {
	Instances []Instance
	// DecodeStepCost and PrefillCost are the modeled per-iteration dense
	// costs of one instance under the workload's per-instance share.
	DecodeStepCost float64
	PrefillCost    float64
	// Objective is the total modeled cost the search minimized.
	Objective float64
	// CacheCapacity is the KV bytes the plan can hold cluster-wide.
	CacheCapacity int64
	// Evaluated counts candidate configurations costed.
	Evaluated int
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
}

// NumAttentionWorkers counts pooled devices across instances.
func (p *Plan) NumAttentionWorkers() int {
	n := 0
	for _, in := range p.Instances {
		n += len(in.AttentionWorkers)
	}
	return n
}

// String renders a compact plan description.
func (p *Plan) String() string {
	s := fmt.Sprintf("%d instance(s), obj=%.4fs, cache=%.1fGB\n", len(p.Instances), p.Objective, float64(p.CacheCapacity)/1e9)
	for i, in := range p.Instances {
		s += fmt.Sprintf("  instance %d:\n", i)
		for _, st := range in.Stages {
			s += fmt.Sprintf("    stage %s x%d: %d layers, TP=%d PP=%d\n", st.Spec.Name, len(st.Devices), st.Layers, st.TP, st.PP)
		}
		if len(in.AttentionWorkers) > 0 {
			s += fmt.Sprintf("    attention workers: %d\n", len(in.AttentionWorkers))
		}
	}
	return s
}

// Search runs the hierarchical exploration and returns the best plan.
func Search(cluster *hardware.Cluster, est *perf.Estimator, wl Workload, opts Options) (*Plan, error) {
	start := time.Now()
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	if opts.Delta < 0 {
		return nil, fmt.Errorf("parallelizer: negative Delta %g", opts.Delta)
	}
	cfg := est.Config()
	groups := cluster.DevicesByType()

	// Level 1: candidate instance counts d must divide every type's count.
	var candidates []int
	maxD := len(cluster.Devices)
	for d := 1; d <= maxD; d++ {
		ok := true
		for _, g := range groups {
			if len(g.IDs)%d != 0 {
				ok = false
				break
			}
		}
		if ok {
			candidates = append(candidates, d)
		}
	}

	var feasible []*Plan
	evaluated := 0
	for _, d := range candidates {
		if opts.ForceInstances > 0 && d != opts.ForceInstances {
			continue
		}
		plan, evals, err := searchGrouping(cluster, est, cfg, wl, opts, groups, d)
		evaluated += evals
		if err != nil {
			continue // infeasible grouping
		}
		feasible = append(feasible, plan)
	}
	if len(feasible) == 0 {
		return nil, fmt.Errorf("parallelizer: no feasible configuration for %s on %s", cfg.Name, cluster)
	}
	// Best objective, then the largest cache within tolerance of it.
	minObj := math.Inf(1)
	for _, p := range feasible {
		if p.Objective < minObj {
			minObj = p.Objective
		}
	}
	best := feasible[0]
	for _, p := range feasible {
		within := p.Objective <= minObj*(1+opts.CacheTolerance)
		bestWithin := best.Objective <= minObj*(1+opts.CacheTolerance)
		switch {
		case within && !bestWithin:
			best = p
		case within == bestWithin && p.CacheCapacity > best.CacheCapacity:
			best = p
		}
	}
	best.Evaluated = evaluated
	best.Elapsed = time.Since(start)
	return best, nil
}

// searchGrouping builds and costs the best plan with d data-parallel
// instances.
func searchGrouping(cluster *hardware.Cluster, est *perf.Estimator, cfg model.Config, wl Workload, opts Options, groups []hardware.TypeGroup, d int) (*Plan, int, error) {
	evaluated := 0

	// Per-instance workload share.
	decodeBatch := ceilDiv(wl.DecodeBatch, d)
	prefillBatch := ceilDiv(wl.PrefillBatch, d)

	// Slice each type's devices across instances.
	instDevices := make([][]hardware.TypeGroup, d)
	for i := 0; i < d; i++ {
		for _, g := range groups {
			per := len(g.IDs) / d
			ids := append([]hardware.DeviceID(nil), g.IDs[i*per:(i+1)*per]...)
			instDevices[i] = append(instDevices[i], hardware.TypeGroup{Spec: g.Spec, IDs: ids})
		}
	}

	// All instances are symmetric (same type counts); search once and
	// replicate the structure, instantiating per-instance device IDs.
	proto, evals, err := searchInstance(cluster, est, cfg, wl, opts, instDevices[0], decodeBatch, prefillBatch)
	evaluated += evals
	if err != nil {
		return nil, evaluated, err
	}

	plan := &Plan{DecodeStepCost: proto.decodeCost, PrefillCost: proto.prefillCost}
	for i := 0; i < d; i++ {
		inst, err := instantiate(proto, instDevices[i])
		if err != nil {
			return nil, evaluated, err
		}
		plan.Instances = append(plan.Instances, inst)
	}
	plan.Objective = proto.objective
	plan.CacheCapacity = int64(d) * proto.cacheCapacity

	// KV-capacity filter (level 1): the grouping must hold the decoding
	// load of R.
	required := int64(float64(wl.DecodeBatch) * float64(wl.AvgContext) * float64(cfg.KVBytesPerToken()) * opts.MinCacheFraction)
	if plan.CacheCapacity < required {
		return nil, evaluated, fmt.Errorf("parallelizer: grouping d=%d holds %.1fGB cache, needs %.1fGB", d, float64(plan.CacheCapacity)/1e9, float64(required)/1e9)
	}
	return plan, evaluated, nil
}

// protoInstance is the searched structure of one instance before device IDs
// are bound: per-type primary counts, per-stage (tp, pp, layers).
type protoInstance struct {
	stages        []protoStage
	attnPerType   map[string]int // demoted device count per type name
	decodeCost    float64
	prefillCost   float64
	objective     float64
	cacheCapacity int64
}

type protoStage struct {
	spec   hardware.GPUSpec
	count  int
	tp, pp int
	layers int
}

// searchInstance performs levels 2 and 3 for one instance built from the
// given per-type device groups.
func searchInstance(cluster *hardware.Cluster, est *perf.Estimator, cfg model.Config, wl Workload, opts Options, typeGroups []hardware.TypeGroup, decodeBatch, prefillBatch int) (*protoInstance, int, error) {
	evaluated := 0

	// Working state: per-type primary-worker counts, initially everything.
	states := make([]typeState, 0, len(typeGroups))
	for _, g := range typeGroups {
		if len(g.IDs) > 0 {
			states = append(states, typeState{spec: g.Spec, total: len(g.IDs), prim: len(g.IDs)})
		}
	}
	if len(states) == 0 {
		return nil, evaluated, fmt.Errorf("parallelizer: empty instance")
	}

	// perLayerCost under perfect scaling: dense layer time divided by the
	// stage's device count.
	cp := func() (float64, bool) {
		var unit []float64
		for _, s := range states {
			if s.prim > 0 {
				unit = append(unit, est.DenseLayerTime(s.spec, decodeBatch, 1)/float64(s.prim))
			}
		}
		if len(unit) == 0 {
			return 0, false
		}
		layers := apportionMinMax(cfg.Layers, unit)
		maxCost := 0.0
		for i, l := range layers {
			if c := float64(l) * unit[i]; c > maxCost {
				maxCost = c
			}
		}
		return maxCost, true
	}

	// Weight-fit check: every primary device must hold its layer shard.
	weightsFit := func() bool {
		stages := activeStages(states, cfg, est, decodeBatch)
		for _, st := range stages {
			perDev := float64(st.layers) * float64(cfg.LayerWeightBytes()) / float64(st.count)
			budget := float64(st.spec.MemBytes) * (1 - opts.MemHeadroom)
			if perDev > budget {
				return false
			}
		}
		return true
	}

	if !weightsFit() {
		return nil, evaluated, fmt.Errorf("parallelizer: model %s does not fit on instance primaries", cfg.Name)
	}

	// Level 2 exclusion heuristic: walk types from lowest to highest tier,
	// removing devices while the Cp ratio stays within 1+Δ.
	base, ok := cp()
	if !ok {
		return nil, evaluated, fmt.Errorf("parallelizer: no primary workers")
	}
	order := make([]int, len(states))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return states[order[a]].spec.Tier < states[order[b]].spec.Tier })

exclusion:
	for _, idx := range order {
		for states[idx].prim > 0 {
			// Never remove the last primary of the whole instance.
			totalPrim := 0
			for _, s := range states {
				totalPrim += s.prim
			}
			if totalPrim == 1 {
				break exclusion
			}
			states[idx].prim--
			evaluated++
			after, ok := cp()
			if !ok || !weightsFit() || after/base > 1+opts.Delta {
				states[idx].prim++ // revert
				break exclusion
			}
			base = after
		}
	}

	// Candidate primary sets: the paper's Cp-greedy result, plus — under
	// ExtendedSearch — every tier-suffix drop (only the top k tiers serve
	// as primaries) evaluated with the full comm-aware level-3 model.
	candidates := [][]typeState{cloneStates(states)}
	if opts.ExtendedSearch {
		tierOrder := make([]int, len(states))
		for i := range tierOrder {
			tierOrder[i] = i
		}
		sort.Slice(tierOrder, func(a, b int) bool { return states[tierOrder[a]].spec.Tier > states[tierOrder[b]].spec.Tier })
		for keep := 1; keep <= len(states); keep++ {
			cand := cloneStates(states)
			for rank, idx := range tierOrder {
				if rank < keep {
					cand[idx].prim = cand[idx].total
				} else {
					cand[idx].prim = 0
				}
			}
			candidates = append(candidates, cand)
		}
	}

	var best *protoInstance
	for _, cand := range candidates {
		proto, evals, err := assembleProto(cluster, est, cfg, wl, opts, typeGroups, cand, decodeBatch, prefillBatch)
		evaluated += evals
		if err != nil {
			continue
		}
		if best == nil || proto.objective < best.objective {
			best = proto
		}
	}
	if best == nil {
		return nil, evaluated, fmt.Errorf("parallelizer: no feasible primary-worker layout for %s", cfg.Name)
	}
	return best, evaluated, nil
}

// cloneStates copies a typeState slice.
func cloneStates(states []typeState) []typeState {
	return append([]typeState(nil), states...)
}

// assembleProto runs level 3 (TP×PP search, comm-aware costing) and the
// capacity accounting for one fixed primary-worker assignment.
func assembleProto(cluster *hardware.Cluster, est *perf.Estimator, cfg model.Config, wl Workload, opts Options, typeGroups []hardware.TypeGroup, states []typeState, decodeBatch, prefillBatch int) (*protoInstance, int, error) {
	evaluated := 0
	stages := activeStages(states, cfg, est, decodeBatch)
	if len(stages) == 0 {
		return nil, evaluated, fmt.Errorf("parallelizer: no primary workers")
	}
	// Weight fit for this assignment.
	for _, st := range stages {
		perDev := float64(st.layers) * float64(cfg.LayerWeightBytes()) / float64(st.count)
		if perDev > float64(st.spec.MemBytes)*(1-opts.MemHeadroom) {
			return nil, evaluated, fmt.Errorf("parallelizer: %s stage over weight budget", st.spec.Name)
		}
	}
	var protoStages []protoStage
	var decodeCost, prefillCost float64
	for _, st := range stages {
		bestCost := math.Inf(1)
		var bestTP, bestPP int
		var bestPrefill float64
		link := worstIntraTypeLink(cluster, typeGroups, st.spec.Name, st.count)
		for tp := 1; tp <= st.count; tp++ {
			if st.count%tp != 0 {
				continue
			}
			pp := st.count / tp
			if pp > st.layers {
				continue
			}
			evaluated++
			dec := stageDecodeCost(est, cfg, st.spec, st.layers, tp, pp, decodeBatch, link)
			pre := stagePrefillCost(est, cfg, st.spec, st.layers, tp, pp, prefillBatch, wl.AvgPrompt, link)
			total := float64(wl.AvgOutput)*dec + pre
			if total < bestCost {
				bestCost, bestTP, bestPP, bestPrefill = total, tp, pp, pre
			}
		}
		if math.IsInf(bestCost, 1) {
			return nil, evaluated, fmt.Errorf("parallelizer: no TP/PP layout for stage %s", st.spec.Name)
		}
		protoStages = append(protoStages, protoStage{spec: st.spec, count: st.count, tp: bestTP, pp: bestPP, layers: st.layers})
		decodeCost += stageDecodeCost(est, cfg, st.spec, st.layers, bestTP, bestPP, decodeBatch, link)
		prefillCost += bestPrefill
	}

	// Inter-stage pipeline transfers.
	if len(protoStages) > 1 {
		hop := cluster.InterLink // unified stages are per-type ⇒ usually cross-host
		decodeCost += float64(len(protoStages)-1) * perf.P2PTime(hop, cfg.HiddenStateBytes(decodeBatch))
		prefillCost += float64(len(protoStages)-1) * perf.P2PTime(hop, cfg.HiddenStateBytes(prefillBatch*wl.AvgPrompt))
	}
	// LM head on the last stage.
	last := protoStages[len(protoStages)-1]
	decodeCost += est.LMHeadTime(last.spec, decodeBatch, last.tp)
	prefillCost += est.LMHeadTime(last.spec, prefillBatch, last.tp)

	// Cache capacity: leftover memory on primaries plus all memory on
	// attention workers (minus headroom).
	var cache float64
	attnPerType := map[string]int{}
	for _, s := range states {
		demoted := s.total - s.prim
		if demoted > 0 {
			attnPerType[s.spec.Name] = demoted
			cache += float64(demoted) * float64(s.spec.MemBytes) * (1 - opts.MemHeadroom)
		}
	}
	for _, st := range protoStages {
		perDev := float64(st.spec.MemBytes)*(1-opts.MemHeadroom) - float64(st.layers)*float64(cfg.LayerWeightBytes())/float64(st.count)
		if perDev < 0 {
			perDev = 0
		}
		cache += float64(st.count) * perDev
	}

	return &protoInstance{
		stages:        protoStages,
		attnPerType:   attnPerType,
		decodeCost:    decodeCost,
		prefillCost:   prefillCost,
		objective:     float64(wl.AvgOutput)*decodeCost + prefillCost,
		cacheCapacity: int64(cache),
	}, evaluated, nil
}

// typeState tracks one GPU type's primary-worker count during the
// exclusion heuristic.
type typeState struct {
	spec  hardware.GPUSpec
	total int
	prim  int
}

// activeStage captures a unified per-type stage after apportionment.
type activeStage struct {
	spec   hardware.GPUSpec
	count  int
	layers int
}

// activeStages apportions layers across the currently active per-type
// primary groups in tier order (high to low — pipeline flows downward).
func activeStages(states []typeState, cfg model.Config, est *perf.Estimator, decodeBatch int) []activeStage {
	var idx []int
	for i, s := range states {
		if s.prim > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return states[idx[a]].spec.Tier > states[idx[b]].spec.Tier })
	unit := make([]float64, len(idx))
	for k, i := range idx {
		unit[k] = est.DenseLayerTime(states[i].spec, decodeBatch, 1) / float64(states[i].prim)
	}
	layers := apportionMinMax(cfg.Layers, unit)
	out := make([]activeStage, 0, len(idx))
	for k, i := range idx {
		if layers[k] == 0 {
			continue
		}
		out = append(out, activeStage{spec: states[i].spec, count: states[i].prim, layers: layers[k]})
	}
	return out
}

// apportion splits total into integer parts proportional to weights using
// the largest-remainder method; every positive-weight part gets at least
// one unit when total allows.
func apportion(total int, weights []float64, wsum float64) []int {
	n := len(weights)
	out := make([]int, n)
	if n == 0 || wsum <= 0 {
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	assigned := 0
	rems := make([]rem, 0, n)
	for i, w := range weights {
		exact := float64(total) * w / wsum
		out[i] = int(exact)
		assigned += out[i]
		rems = append(rems, rem{i, exact - float64(out[i])})
	}
	sort.Slice(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; assigned < total; k++ {
		out[rems[k%n].idx]++
		assigned++
	}
	// Guarantee a floor of one layer per positive-weight stage.
	for i := range out {
		if weights[i] > 0 && out[i] == 0 {
			// Steal from the largest.
			maxIdx := 0
			for j := range out {
				if out[j] > out[maxIdx] {
					maxIdx = j
				}
			}
			if out[maxIdx] > 1 {
				out[maxIdx]--
				out[i]++
			}
		}
	}
	return out
}

// apportionMinMax splits total layers across stages with the given
// per-layer costs so that the maximum stage cost is minimized. It starts
// from a proportional split and then greedily moves single layers off the
// bottleneck stage while doing so lowers the maximum; a stage may end up
// with zero layers (its devices contribute nothing and are candidates for
// demotion to attention workers).
func apportionMinMax(total int, unitCost []float64) []int {
	n := len(unitCost)
	out := make([]int, n)
	if n == 0 || total <= 0 {
		return out
	}
	var wsum float64
	for _, c := range unitCost {
		if c > 0 {
			wsum += 1 / c
		}
	}
	if wsum <= 0 {
		out[0] = total
		return out
	}
	assigned := 0
	for i, c := range unitCost {
		if c > 0 {
			out[i] = int(float64(total) / c / wsum)
			assigned += out[i]
		}
	}
	// Distribute the remainder to the stages where it hurts least.
	for assigned < total {
		best, bestCost := -1, math.Inf(1)
		for i, c := range unitCost {
			if c <= 0 {
				continue
			}
			if nc := float64(out[i]+1) * c; nc < bestCost {
				bestCost = nc
				best = i
			}
		}
		out[best]++
		assigned++
	}
	// Local improvement: move a layer off the bottleneck while the max
	// strictly decreases.
	for iter := 0; iter < total*n; iter++ {
		maxI, maxC := -1, 0.0
		for i, c := range unitCost {
			if out[i] > 0 && float64(out[i])*c > maxC {
				maxC = float64(out[i]) * c
				maxI = i
			}
		}
		if maxI < 0 {
			break
		}
		dst, dstCost := -1, math.Inf(1)
		for i, c := range unitCost {
			if i == maxI || c <= 0 {
				continue
			}
			if nc := float64(out[i]+1) * c; nc < dstCost {
				dstCost = nc
				dst = i
			}
		}
		if dst < 0 || dstCost >= maxC {
			break
		}
		out[maxI]--
		out[dst]++
	}
	return out
}

// stageDecodeCost models one decode iteration through a stage organized as
// tp×pp: sub-stage dense compute + per-layer TP all-reduces + pp-1 hops.
func stageDecodeCost(est *perf.Estimator, cfg model.Config, spec hardware.GPUSpec, layers, tp, pp, tokens int, link hardware.LinkSpec) float64 {
	dense := est.DenseIterTime(spec, tokens, layers, tp)
	var comm float64
	if tp > 1 {
		perLayer := 2 * perf.AllReduceTime(link, cfg.HiddenStateBytes(tokens), tp)
		comm += float64(layers) * perLayer
	}
	if pp > 1 {
		comm += float64(pp-1) * perf.P2PTime(link, cfg.HiddenStateBytes(tokens))
	}
	return dense + comm
}

// stagePrefillCost models prefilling a batch of prompts through the stage.
func stagePrefillCost(est *perf.Estimator, cfg model.Config, spec hardware.GPUSpec, layers, tp, pp, batch, promptLen int, link hardware.LinkSpec) float64 {
	prompts := make([]int, batch)
	for i := range prompts {
		prompts[i] = promptLen
	}
	tokens := batch * promptLen
	dense := est.DenseIterTime(spec, tokens, layers, tp)
	attn := float64(layers) * est.AttnPrefillLayerTime(spec, prompts, tp)
	var comm float64
	if tp > 1 {
		comm += float64(layers) * 2 * perf.AllReduceTime(link, cfg.HiddenStateBytes(tokens), tp)
	}
	if pp > 1 {
		comm += float64(pp-1) * perf.P2PTime(link, cfg.HiddenStateBytes(tokens))
	}
	return dense + attn + comm
}

// worstIntraTypeLink finds the slowest link inside the first `count`
// devices of the named type group — the bottleneck for TP collectives.
func worstIntraTypeLink(cluster *hardware.Cluster, groups []hardware.TypeGroup, name string, count int) hardware.LinkSpec {
	var ids []hardware.DeviceID
	for _, g := range groups {
		if g.Spec.Name == name {
			ids = g.IDs
			break
		}
	}
	if len(ids) > count {
		ids = ids[:count]
	}
	if len(ids) < 2 {
		return hardware.Loopback
	}
	worst := cluster.Link(ids[0], ids[1])
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			l := cluster.Link(ids[i], ids[j])
			if l.Beta < worst.Beta {
				worst = l
			}
		}
	}
	return worst
}

// instantiate binds the searched proto structure to concrete device IDs of
// one instance: primaries come first from each type group, demoted devices
// become attention workers.
func instantiate(proto *protoInstance, typeGroups []hardware.TypeGroup) (Instance, error) {
	byName := map[string][]hardware.DeviceID{}
	for _, g := range typeGroups {
		byName[g.Spec.Name] = g.IDs
	}
	var inst Instance
	for _, st := range proto.stages {
		ids, ok := byName[st.spec.Name]
		if !ok || len(ids) < st.count {
			return Instance{}, fmt.Errorf("parallelizer: instance lacks %d %s devices", st.count, st.spec.Name)
		}
		inst.Stages = append(inst.Stages, Stage{
			Spec:    st.spec,
			Devices: append([]hardware.DeviceID(nil), ids[:st.count]...),
			TP:      st.tp,
			PP:      st.pp,
			Layers:  st.layers,
		})
		byName[st.spec.Name] = ids[st.count:]
	}
	// Everything not consumed by a stage is an attention worker.
	for _, g := range typeGroups {
		inst.AttentionWorkers = append(inst.AttentionWorkers, byName[g.Spec.Name]...)
	}
	return inst, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
