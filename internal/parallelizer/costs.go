package parallelizer

import (
	"hetis/internal/hardware"
	"hetis/internal/perf"
)

// StageDecodeTime models one decode iteration of `tokens` sequences through
// a concrete stage: sub-stage dense compute, per-layer tensor-parallel
// all-reduces, and pipeline hops inside the stage. link is the channel the
// stage's collectives run over.
func StageDecodeTime(est *perf.Estimator, st Stage, tokens int, link hardware.LinkSpec) float64 {
	return stageDecodeCost(est, est.Config(), st.Spec, st.Layers, st.TP, st.PP, tokens, link)
}

// StagePrefillTime models prefilling prompts with the given lengths through
// the stage (dense + prompt attention + collectives).
func StagePrefillTime(est *perf.Estimator, st Stage, promptLens []int, link hardware.LinkSpec) float64 {
	if len(promptLens) == 0 {
		return 0
	}
	cfg := est.Config()
	total := 0
	for _, l := range promptLens {
		total += l
	}
	dense := est.DenseIterTime(st.Spec, total, st.Layers, st.TP)
	attn := float64(st.Layers) * est.AttnPrefillLayerTime(st.Spec, promptLens, st.TP)
	var comm float64
	if st.TP > 1 {
		comm += float64(st.Layers) * 2 * perf.AllReduceTime(link, cfg.HiddenStateBytes(total), st.TP)
	}
	if st.PP > 1 {
		comm += float64(st.PP-1) * perf.P2PTime(link, cfg.HiddenStateBytes(total))
	}
	return dense + attn + comm
}

// StageLink returns the slowest link inside a stage's device set — the
// bottleneck channel for its collectives.
func StageLink(cluster *hardware.Cluster, st Stage) hardware.LinkSpec {
	if len(st.Devices) < 2 {
		return hardware.Loopback
	}
	worst := cluster.Link(st.Devices[0], st.Devices[1])
	for i := 0; i < len(st.Devices); i++ {
		for j := i + 1; j < len(st.Devices); j++ {
			l := cluster.Link(st.Devices[i], st.Devices[j])
			if l.Beta < worst.Beta {
				worst = l
			}
		}
	}
	return worst
}
