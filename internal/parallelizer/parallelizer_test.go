package parallelizer

import (
	"testing"
	"time"

	"hetis/internal/hardware"
	"hetis/internal/model"
	"hetis/internal/perf"
)

func searchPaper(t *testing.T, cfg model.Config, wl Workload, opts Options) *Plan {
	t.Helper()
	plan, err := Search(hardware.PaperCluster(), perf.New(cfg), wl, opts)
	if err != nil {
		t.Fatalf("Search(%s): %v", cfg.Name, err)
	}
	return plan
}

func specCounts(plan *Plan) (primaries, attn map[string]int) {
	primaries = map[string]int{}
	attn = map[string]int{}
	c := hardware.PaperCluster()
	for _, in := range plan.Instances {
		for _, st := range in.Stages {
			primaries[st.Spec.Name] += len(st.Devices)
		}
		for _, id := range in.AttentionWorkers {
			attn[c.Device(id).Spec.Name]++
		}
	}
	return primaries, attn
}

func TestLlama70BMatchesPaperDeployment(t *testing.T) {
	// §7.2: "In Hetis, A100 and 3090 GPUs serve as Primary Workers, while
	// P100s are dedicated to Attention Worker roles."
	plan := searchPaper(t, model.Llama70B, DefaultWorkload(), DefaultOptions())
	prim, attn := specCounts(plan)
	t.Logf("plan:\n%s", plan)
	if prim["P100"] != 0 {
		t.Errorf("P100s should not be primary workers, got %d", prim["P100"])
	}
	if attn["P100"] != 4 {
		t.Errorf("all 4 P100s should be attention workers, got %d", attn["P100"])
	}
	if prim["A100"] == 0 || prim["3090"] == 0 {
		t.Errorf("A100s and 3090s should serve as primaries: %v", prim)
	}
}

func TestEveryDeviceAssignedExactlyOnce(t *testing.T) {
	for _, cfg := range []model.Config{model.Llama13B, model.OPT30B, model.Llama70B} {
		plan := searchPaper(t, cfg, DefaultWorkload(), DefaultOptions())
		seen := map[hardware.DeviceID]int{}
		for _, in := range plan.Instances {
			for _, id := range in.AllDevices() {
				seen[id]++
			}
		}
		c := hardware.PaperCluster()
		if len(seen) != c.NumDevices() {
			t.Errorf("%s: plan covers %d devices, want %d", cfg.Name, len(seen), c.NumDevices())
		}
		for id, n := range seen {
			if n != 1 {
				t.Errorf("%s: device %d assigned %d times", cfg.Name, id, n)
			}
		}
	}
}

func TestLayersSumToModel(t *testing.T) {
	for _, cfg := range []model.Config{model.Llama13B, model.OPT30B, model.Llama70B} {
		plan := searchPaper(t, cfg, DefaultWorkload(), DefaultOptions())
		for i, in := range plan.Instances {
			total := 0
			for _, st := range in.Stages {
				total += st.Layers
				if st.TP*st.PP != len(st.Devices) {
					t.Errorf("%s instance %d: TP(%d)*PP(%d) != %d devices", cfg.Name, i, st.TP, st.PP, len(st.Devices))
				}
			}
			if total != cfg.Layers {
				t.Errorf("%s instance %d: stages hold %d layers, want %d", cfg.Name, i, total, cfg.Layers)
			}
		}
	}
}

func TestWeightsFitOnEveryPrimary(t *testing.T) {
	opts := DefaultOptions()
	for _, cfg := range []model.Config{model.Llama13B, model.OPT30B, model.Llama70B} {
		plan := searchPaper(t, cfg, DefaultWorkload(), opts)
		for _, in := range plan.Instances {
			for _, st := range in.Stages {
				perDev := float64(st.Layers) * float64(cfg.LayerWeightBytes()) / float64(len(st.Devices))
				budget := float64(st.Spec.MemBytes) * (1 - opts.MemHeadroom)
				if perDev > budget {
					t.Errorf("%s: stage %s holds %.1fGB/device, budget %.1fGB",
						cfg.Name, st.Spec.Name, perDev/1e9, budget/1e9)
				}
			}
		}
	}
}

func TestStagesOrderedHighToLowTier(t *testing.T) {
	plan := searchPaper(t, model.Llama70B, DefaultWorkload(), DefaultOptions())
	for _, in := range plan.Instances {
		for i := 1; i < len(in.Stages); i++ {
			if in.Stages[i-1].Spec.Tier < in.Stages[i].Spec.Tier {
				t.Errorf("stages not ordered by tier: %s before %s",
					in.Stages[i-1].Spec.Name, in.Stages[i].Spec.Name)
			}
		}
	}
}

func TestDeltaZeroKeepsMorePrimaries(t *testing.T) {
	// With Δ=0, removals are only accepted when they strictly do not hurt;
	// the P100s end up kept as primaries more often. The attention pool
	// must therefore be no larger than under the default Δ.
	strict := DefaultOptions()
	strict.Delta = 0
	loose := DefaultOptions()
	loose.Delta = 0.5

	planStrict := searchPaper(t, model.Llama70B, DefaultWorkload(), strict)
	planLoose := searchPaper(t, model.Llama70B, DefaultWorkload(), loose)
	if planStrict.NumAttentionWorkers() > planLoose.NumAttentionWorkers() {
		t.Errorf("Δ=0 demoted more GPUs (%d) than Δ=0.5 (%d)",
			planStrict.NumAttentionWorkers(), planLoose.NumAttentionWorkers())
	}
}

func TestLargeDeltaStillKeepsAPrimary(t *testing.T) {
	opts := DefaultOptions()
	opts.Delta = 100 // try to demote everything
	plan := searchPaper(t, model.Llama13B, DefaultWorkload(), opts)
	for i, in := range plan.Instances {
		if len(in.Stages) == 0 {
			t.Errorf("instance %d has no primary workers", i)
		}
	}
}

func TestCacheCapacityPositiveAndCoversWorkload(t *testing.T) {
	wl := DefaultWorkload()
	plan := searchPaper(t, model.Llama13B, wl, DefaultOptions())
	need := int64(wl.DecodeBatch) * int64(wl.AvgContext) * model.Llama13B.KVBytesPerToken()
	if plan.CacheCapacity < need {
		t.Errorf("plan cache %.1fGB below workload demand %.1fGB",
			float64(plan.CacheCapacity)/1e9, float64(need)/1e9)
	}
}

func TestInfeasibleModelRejected(t *testing.T) {
	// A tiny cluster cannot hold Llama-70B weights at all.
	small := hardware.NewBuilder(hardware.LAN100G).
		AddHost("h", hardware.PCIe3x16, hardware.P100, 2).
		MustBuild()
	if _, err := Search(small, perf.New(model.Llama70B), DefaultWorkload(), DefaultOptions()); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestWorkloadValidation(t *testing.T) {
	bad := DefaultWorkload()
	bad.DecodeBatch = 0
	if _, err := Search(hardware.PaperCluster(), perf.New(model.Llama13B), bad, DefaultOptions()); err == nil {
		t.Fatal("invalid workload should error")
	}
	if _, err := Search(hardware.PaperCluster(), perf.New(model.Llama13B), DefaultWorkload(), Options{Delta: -1}); err == nil {
		t.Fatal("negative delta should error")
	}
}

func TestHomogeneousClusterDegeneratesToClassicParallelism(t *testing.T) {
	// With one GPU type there is nothing to demote at Δ=0.05 (removing a
	// device always raises Cp by ~1/n > 5% for n ≤ 8); the plan is plain
	// TP/PP/DP.
	homo := hardware.NewBuilder(hardware.LAN100G).
		AddHost("h0", hardware.NVLink3, hardware.A100, 4).
		AddHost("h1", hardware.NVLink3, hardware.A100, 4).
		MustBuild()
	plan, err := Search(homo, perf.New(model.Llama13B), DefaultWorkload(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumAttentionWorkers() != 0 {
		t.Errorf("homogeneous cluster demoted %d GPUs", plan.NumAttentionWorkers())
	}
}

func TestSearchOverheadSmall(t *testing.T) {
	// §7.4: search completes in seconds even for 5 GPU types × 32 GPUs. In
	// the simulator it must be far below that.
	big := hardware.NewBuilder(hardware.LAN100G)
	specs := []hardware.GPUSpec{hardware.H100, hardware.A100, hardware.V100, hardware.RTX3090, hardware.P100}
	for i, s := range specs {
		for h := 0; h < 4; h++ {
			big.AddHost(s.Name+"-host", hardware.PCIe4x16, s, 8)
		}
		_ = i
	}
	cluster := big.MustBuild()
	if cluster.NumDevices() != 160 {
		t.Fatalf("cluster has %d devices, want 160", cluster.NumDevices())
	}
	wl := DefaultWorkload()
	wl.DecodeBatch = 512
	plan, err := Search(cluster, perf.New(model.Llama70B), wl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("160-GPU search: %v elapsed, %d configs, %d attention workers",
		plan.Elapsed, plan.Evaluated, plan.NumAttentionWorkers())
	if plan.Elapsed > 15*time.Second {
		t.Errorf("search took %v, paper reports 15s for this scale", plan.Elapsed)
	}
}

func TestApportion(t *testing.T) {
	// Exact proportions.
	got := apportion(10, []float64{1, 1}, 2)
	if got[0]+got[1] != 10 || got[0] != 5 {
		t.Fatalf("apportion(10, equal) = %v", got)
	}
	// Largest remainder.
	got = apportion(10, []float64{2, 1}, 3)
	if got[0]+got[1] != 10 || got[0] < got[1] {
		t.Fatalf("apportion(10, 2:1) = %v", got)
	}
	// Floor of one for tiny weights.
	got = apportion(10, []float64{100, 0.001}, 100.001)
	if got[1] < 1 {
		t.Fatalf("tiny weight starved: %v", got)
	}
	if got[0]+got[1] != 10 {
		t.Fatalf("sum broken: %v", got)
	}
	// Degenerate inputs.
	if out := apportion(5, nil, 0); len(out) != 0 {
		t.Fatalf("empty weights should yield empty: %v", out)
	}
}

func TestPlanStringMentionsStages(t *testing.T) {
	plan := searchPaper(t, model.Llama70B, DefaultWorkload(), DefaultOptions())
	s := plan.String()
	if s == "" {
		t.Fatal("empty plan description")
	}
	for _, want := range []string{"instance", "A100", "attention workers"} {
		if !containsStr(s, want) {
			t.Errorf("plan description missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
