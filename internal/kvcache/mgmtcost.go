package kvcache

// MgmtCostModel prices the CPU-side cache-management work of a decode step,
// reproducing the trade-off of Fig. 15(b): managing blocks per head group
// issues more (smaller) table operations than vLLM's per-token scheme,
// costing extra on the store path, while the block-indexing work on the
// fetch path parallelizes across CPU cores and ends up faster.
type MgmtCostModel struct {
	// StoreFixed is the fixed kernel/launch cost of a store round.
	StoreFixed float64
	// StorePerOp is the cost of one block-table insert/append.
	StorePerOp float64
	// FetchFixed is the fixed cost of assembling a fetch.
	FetchFixed float64
	// FetchPerOp is the single-core cost of indexing one block.
	FetchPerOp float64
	// Cores is the CPU parallelism available to head-wise block indexing.
	Cores int
}

// DefaultMgmtCost matches the constants used for the Fig. 15(b)
// reproduction: ~3 µs per store round plus 10 ns per table op, ~2 µs per
// fetch plus 50 ns per block index, 64-way CPU parallelism.
func DefaultMgmtCost() MgmtCostModel {
	return MgmtCostModel{
		StoreFixed: 3e-6,
		StorePerOp: 10e-9,
		FetchFixed: 2e-6,
		FetchPerOp: 50e-9,
		Cores:      64,
	}
}

// TokenWiseStore is vLLM's per-token store: one table append per step.
func (m MgmtCostModel) TokenWiseStore() float64 {
	return m.StoreFixed + m.StorePerOp
}

// HeadWiseStore is Hetis' per-group store: one append per head group.
func (m MgmtCostModel) HeadWiseStore(groups int) float64 {
	return m.StoreFixed + float64(groups)*m.StorePerOp
}

// TokenWiseFetch indexes ctxBlocks blocks on a single core.
func (m MgmtCostModel) TokenWiseFetch(ctxBlocks int) float64 {
	return m.FetchFixed + float64(ctxBlocks)*m.FetchPerOp
}

// HeadWiseFetch indexes groups×ctxBlocks block entries spread across Cores
// workers.
func (m MgmtCostModel) HeadWiseFetch(groups, ctxBlocks int) float64 {
	cores := m.Cores
	if cores < 1 {
		cores = 1
	}
	ops := float64(groups) * float64(ctxBlocks)
	return m.FetchFixed + ops*m.FetchPerOp/float64(cores)
}
