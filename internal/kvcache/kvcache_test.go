package kvcache

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestManager(t *testing.T, blocks int) *Manager {
	t.Helper()
	cfg := Config{BlockTokens: 16, BytesPerGroupToken: 1024, CapacityBytes: int64(blocks) * 16 * 1024}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalBlocks() != blocks {
		t.Fatalf("TotalBlocks=%d want %d", m.TotalBlocks(), blocks)
	}
	return m
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewManagerValidation(t *testing.T) {
	for _, cfg := range []Config{
		{BlockTokens: 0, BytesPerGroupToken: 1, CapacityBytes: 100},
		{BlockTokens: 16, BytesPerGroupToken: 0, CapacityBytes: 100},
		{BlockTokens: 16, BytesPerGroupToken: 1, CapacityBytes: -1},
	} {
		if _, err := NewManager(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestAllocFreeAccounting(t *testing.T) {
	m := newTestManager(t, 100)
	// 2 groups × 33 tokens → ceil(33/16)=3 blocks/group → 6 blocks.
	mustOK(t, m.Alloc(1, 2, 33))
	if m.UsedBlocks() != 6 {
		t.Fatalf("UsedBlocks=%d want 6", m.UsedBlocks())
	}
	if m.BytesOf(1) != 6*16*1024 {
		t.Fatalf("BytesOf=%d want %d", m.BytesOf(1), 6*16*1024)
	}
	m.Free(1)
	if m.UsedBlocks() != 0 || m.FreeBlocks() != 100 {
		t.Fatalf("free accounting broken: used=%d free=%d", m.UsedBlocks(), m.FreeBlocks())
	}
	mustOK(t, m.CheckInvariants())
}

func TestDoubleAllocRejected(t *testing.T) {
	m := newTestManager(t, 100)
	mustOK(t, m.Alloc(1, 1, 10))
	if err := m.Alloc(1, 1, 10); err == nil {
		t.Fatal("double alloc should fail")
	}
}

func TestAllocNoSpace(t *testing.T) {
	m := newTestManager(t, 4)
	err := m.Alloc(1, 2, 40) // needs 2*3=6 blocks > 4
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	// Failed alloc must not leak.
	if m.FreeBlocks() != 4 {
		t.Fatalf("failed alloc leaked blocks: free=%d", m.FreeBlocks())
	}
}

func TestExtendAllocatesOnBlockBoundary(t *testing.T) {
	m := newTestManager(t, 100)
	mustOK(t, m.Alloc(1, 2, 16)) // exactly 1 block per group
	if m.UsedBlocks() != 2 {
		t.Fatalf("UsedBlocks=%d want 2", m.UsedBlocks())
	}
	mustOK(t, m.Extend(1, 1)) // 17 tokens → 2 blocks per group
	if m.UsedBlocks() != 4 {
		t.Fatalf("UsedBlocks=%d want 4 after boundary crossing", m.UsedBlocks())
	}
	mustOK(t, m.Extend(1, 14)) // 31 tokens → still 2 blocks per group
	if m.UsedBlocks() != 4 {
		t.Fatalf("UsedBlocks=%d want 4 within block", m.UsedBlocks())
	}
	mustOK(t, m.CheckInvariants())
}

func TestExtendNoSpace(t *testing.T) {
	m := newTestManager(t, 2)
	mustOK(t, m.Alloc(1, 2, 16))
	err := m.Extend(1, 1)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	if m.Tokens(1) != 16 {
		t.Fatal("failed extend must not change token count")
	}
}

func TestGrowShrinkGroups(t *testing.T) {
	m := newTestManager(t, 100)
	mustOK(t, m.Alloc(1, 2, 32))
	mustOK(t, m.GrowGroups(1, 3))
	if m.Groups(1) != 5 {
		t.Fatalf("Groups=%d want 5", m.Groups(1))
	}
	if m.UsedBlocks() != 10 {
		t.Fatalf("UsedBlocks=%d want 10", m.UsedBlocks())
	}
	mustOK(t, m.ShrinkGroups(1, 4))
	if m.Groups(1) != 1 || m.UsedBlocks() != 2 {
		t.Fatalf("after shrink: groups=%d used=%d", m.Groups(1), m.UsedBlocks())
	}
	// Shrinking to zero frees the request.
	mustOK(t, m.ShrinkGroups(1, 1))
	if m.Has(1) {
		t.Fatal("request should be gone after removing all groups")
	}
	mustOK(t, m.CheckInvariants())
}

func TestVictimLIFOPicksLatestArrival(t *testing.T) {
	m := newTestManager(t, 100)
	mustOK(t, m.Alloc(10, 1, 16))
	mustOK(t, m.Alloc(20, 1, 16))
	mustOK(t, m.Alloc(30, 1, 16))
	v, ok := m.VictimLIFO()
	if !ok || v != 30 {
		t.Fatalf("victim=%v ok=%v want 30", v, ok)
	}
	m.Free(30)
	v, ok = m.VictimLIFO()
	if !ok || v != 20 {
		t.Fatalf("victim=%v ok=%v want 20", v, ok)
	}
	m.Free(20)
	m.Free(10)
	if _, ok := m.VictimLIFO(); ok {
		t.Fatal("empty device should have no victim")
	}
}

func TestRequestsOrderedByArrival(t *testing.T) {
	m := newTestManager(t, 100)
	for _, id := range []RequestID{5, 3, 9, 1} {
		mustOK(t, m.Alloc(id, 1, 16))
	}
	got := m.Requests()
	want := []RequestID{5, 3, 9, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Requests()=%v want %v", got, want)
		}
	}
}

func TestOpsCounters(t *testing.T) {
	m := newTestManager(t, 100)
	mustOK(t, m.Alloc(1, 4, 16))
	if m.StoreOps() != 4 {
		t.Fatalf("StoreOps=%d want 4 (one per group)", m.StoreOps())
	}
	mustOK(t, m.Extend(1, 1))
	if m.StoreOps() != 8 {
		t.Fatalf("StoreOps=%d want 8", m.StoreOps())
	}
	m.Fetch(1)
	if m.FetchOps() != 4 {
		t.Fatalf("FetchOps=%d want 4", m.FetchOps())
	}
	m.Fetch(99) // absent: no-op
	if m.FetchOps() != 4 {
		t.Fatal("fetch of absent request should not count")
	}
}

func TestPropertyNoLeaksUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{BlockTokens: 8, BytesPerGroupToken: 64, CapacityBytes: 8 * 64 * 50}
		m, err := NewManager(cfg)
		if err != nil {
			return false
		}
		live := map[RequestID]bool{}
		next := RequestID(0)
		for op := 0; op < 200; op++ {
			switch rng.Intn(5) {
			case 0, 1:
				id := next
				next++
				if m.Alloc(id, 1+rng.Intn(4), rng.Intn(40)) == nil {
					live[id] = true
				}
			case 2:
				for id := range live {
					_ = m.Extend(id, rng.Intn(10))
					break
				}
			case 3:
				for id := range live {
					m.Free(id)
					delete(live, id)
					break
				}
			case 4:
				for id := range live {
					if m.Groups(id) > 1 {
						_ = m.ShrinkGroups(id, 1)
					}
					break
				}
			}
			if m.CheckInvariants() != nil {
				return false
			}
		}
		for id := range live {
			m.Free(id)
		}
		return m.UsedBlocks() == 0 && m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	m := newTestManager(t, 10)
	if m.Utilization() != 0 {
		t.Fatal("fresh manager should be at 0 utilization")
	}
	mustOK(t, m.Alloc(1, 5, 16))
	if got := m.Utilization(); got != 0.5 {
		t.Fatalf("Utilization=%g want 0.5", got)
	}
}
