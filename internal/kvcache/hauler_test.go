package kvcache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPlanMigrationReusesOverlap(t *testing.T) {
	// Device 0 keeps 3 of its 5 groups; only 2 move to device 1.
	old := map[int]int{0: 5, 1: 0}
	new := map[int]int{0: 3, 1: 2}
	moves, err := PlanMigration(old, new, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 {
		t.Fatalf("want 1 move, got %v", moves)
	}
	m := moves[0]
	if m.From != 0 || m.To != 1 || m.Groups != 2 {
		t.Fatalf("move = %+v want 2 groups 0->1", m)
	}
	if m.Bytes != 2*100*64 {
		t.Fatalf("bytes = %d want %d", m.Bytes, 2*100*64)
	}
}

func TestPlanMigrationIdentityIsFree(t *testing.T) {
	old := map[int]int{0: 4, 2: 4}
	moves, err := PlanMigration(old, old, 500, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("identity plan should have no moves, got %v", moves)
	}
}

func TestPlanMigrationMultiWay(t *testing.T) {
	old := map[int]int{0: 6}
	new := map[int]int{1: 2, 2: 2, 3: 2}
	moves, err := PlanMigration(old, new, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if TotalMoveBytes(moves) != 60 {
		t.Fatalf("total bytes = %d want 60", TotalMoveBytes(moves))
	}
	moved := 0
	for _, m := range moves {
		if m.From != 0 {
			t.Fatalf("all moves should come from device 0: %+v", m)
		}
		moved += m.Groups
	}
	if moved != 6 {
		t.Fatalf("moved %d groups want 6", moved)
	}
}

func TestPlanMigrationErrors(t *testing.T) {
	if _, err := PlanMigration(map[int]int{0: 2}, map[int]int{0: 3}, 1, 1); err == nil {
		t.Error("group-count change should error")
	}
	if _, err := PlanMigration(map[int]int{0: -1}, map[int]int{0: -1}, 1, 1); err == nil {
		t.Error("negative groups should error")
	}
}

func TestPropertyMigrationConservesGroups(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDev := 2 + rng.Intn(5)
		total := 1 + rng.Intn(20)
		// Random old and new placements of the same total.
		place := func() map[int]int {
			p := map[int]int{}
			left := total
			for d := 0; d < nDev-1; d++ {
				g := rng.Intn(left + 1)
				if g > 0 {
					p[d] = g
				}
				left -= g
			}
			if left > 0 {
				p[nDev-1] = left
			}
			return p
		}
		old, new := place(), place()
		moves, err := PlanMigration(old, new, 100, 8)
		if err != nil {
			return false
		}
		// Apply the moves to old; must land exactly on new.
		got := map[int]int{}
		for d, g := range old {
			got[d] = g
		}
		for _, m := range moves {
			got[m.From] -= m.Groups
			got[m.To] += m.Groups
			if got[m.From] < 0 {
				return false
			}
		}
		for d := 0; d < nDev; d++ {
			if got[d] != new[d] {
				return false
			}
		}
		// Minimality: moved groups == total deficit.
		deficit := 0
		for d, g := range new {
			if g > old[d] {
				deficit += g - old[d]
			}
		}
		moved := 0
		for _, m := range moves {
			moved += m.Groups
		}
		return moved == deficit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMgmtCostFig15bShape(t *testing.T) {
	// Paper: head-wise management costs ~13% more on the store path and
	// ~26% less on the fetch path. Check the model lands in those
	// neighbourhoods for a typical OPT-30B-like setup: 56 head groups,
	// 1024-token context with 16-token blocks (64 blocks).
	m := DefaultMgmtCost()
	groups, blocks := 40, 64

	storeRatio := m.HeadWiseStore(groups) / m.TokenWiseStore()
	fetchRatio := m.HeadWiseFetch(groups, blocks) / m.TokenWiseFetch(blocks)
	t.Logf("store overhead %+.0f%%, fetch change %+.0f%%", (storeRatio-1)*100, (fetchRatio-1)*100)

	if storeRatio < 1.05 || storeRatio > 1.30 {
		t.Errorf("store ratio %.2f outside paper-like band [1.05,1.30]", storeRatio)
	}
	if fetchRatio > 0.90 || fetchRatio < 0.55 {
		t.Errorf("fetch ratio %.2f outside paper-like band [0.55,0.90]", fetchRatio)
	}
}

func TestMgmtCostDegenerateCores(t *testing.T) {
	m := DefaultMgmtCost()
	m.Cores = 0 // must clamp to 1, not divide by zero
	if got := m.HeadWiseFetch(4, 4); got <= 0 {
		t.Fatalf("HeadWiseFetch with 0 cores = %g", got)
	}
	// Single-core head-wise fetch must cost at least token-wise.
	m.Cores = 1
	if m.HeadWiseFetch(4, 16) < m.TokenWiseFetch(16) {
		t.Error("single-core head-wise fetch cannot be cheaper than token-wise")
	}
}
