package kvcache

import "fmt"

// Move is one leg of a migration plan: transfer `Groups` head groups with
// `Tokens` of context from device From to device To.
type Move struct {
	From, To int
	Groups   int
	Tokens   int
	Bytes    int64
}

// PlanMigration computes the minimal set of group moves that turns the old
// head-group placement of a request into the new one, reusing overlap: a
// device keeps min(old, new) of its groups in place (§5.3's partial cache
// transmission). Placements map device index → group count; tokens is the
// request's context length and bytesPerGroupToken its per-group-token
// footprint on the wire.
//
// The returned moves pair surplus devices with deficit devices greedily in
// ascending device order, which is optimal in total bytes because every
// group costs the same to move regardless of endpoints.
func PlanMigration(old, new map[int]int, tokens int, bytesPerGroupToken int64) ([]Move, error) {
	totalOld, totalNew := 0, 0
	for d, g := range old {
		if g < 0 {
			return nil, fmt.Errorf("kvcache: negative group count %d on device %d", g, d)
		}
		totalOld += g
	}
	for d, g := range new {
		if g < 0 {
			return nil, fmt.Errorf("kvcache: negative group count %d on device %d", g, d)
		}
		totalNew += g
	}
	if totalOld != totalNew {
		return nil, fmt.Errorf("kvcache: placement changes total groups %d -> %d", totalOld, totalNew)
	}

	maxDev := -1
	for d := range old {
		if d > maxDev {
			maxDev = d
		}
	}
	for d := range new {
		if d > maxDev {
			maxDev = d
		}
	}

	type delta struct{ dev, n int }
	var surplus, deficit []delta
	for d := 0; d <= maxDev; d++ {
		diff := old[d] - new[d]
		if diff > 0 {
			surplus = append(surplus, delta{d, diff})
		} else if diff < 0 {
			deficit = append(deficit, delta{d, -diff})
		}
	}

	var moves []Move
	i, j := 0, 0
	for i < len(surplus) && j < len(deficit) {
		n := surplus[i].n
		if deficit[j].n < n {
			n = deficit[j].n
		}
		moves = append(moves, Move{
			From:   surplus[i].dev,
			To:     deficit[j].dev,
			Groups: n,
			Tokens: tokens,
			Bytes:  int64(n) * int64(tokens) * bytesPerGroupToken,
		})
		surplus[i].n -= n
		deficit[j].n -= n
		if surplus[i].n == 0 {
			i++
		}
		if deficit[j].n == 0 {
			j++
		}
	}
	return moves, nil
}

// TotalMoveBytes sums the payload of a plan.
func TotalMoveBytes(moves []Move) int64 {
	var total int64
	for _, m := range moves {
		total += m.Bytes
	}
	return total
}
