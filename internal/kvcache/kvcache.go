// Package kvcache implements Hetis' head-granular paged KV-cache management
// (§6). Like vLLM, device memory is carved into fixed-size blocks; unlike
// vLLM, a block belongs to a single (request, KV head group) pair, so the
// cache of one request can be spread over several devices at head
// granularity and migrated partially.
//
// The manager tracks one device. Engines create one manager per GPU and a
// Hauler moves blocks between them.
package kvcache

import (
	"errors"
	"fmt"
	"sort"
)

// RequestID identifies a serving request.
type RequestID int64

// ErrNoSpace is returned when a device cannot host the requested blocks.
var ErrNoSpace = errors.New("kvcache: out of cache blocks")

// Config shapes a device cache.
type Config struct {
	// BlockTokens is the number of tokens per block (vLLM default 16).
	BlockTokens int
	// BytesPerGroupToken is the cache footprint of one token of one KV
	// head group across the layers hosted on the device.
	BytesPerGroupToken int64
	// CapacityBytes is the device memory budget for KV cache.
	CapacityBytes int64
}

// BlockBytes is the footprint of one block.
func (c Config) BlockBytes() int64 {
	return int64(c.BlockTokens) * c.BytesPerGroupToken
}

// entry is the per-request state on one device.
type entry struct {
	groups  int
	tokens  int
	blocks  int   // groups * ceil(tokens/blockTokens)
	arrival int64 // allocation sequence, drives modified-LIFO eviction
}

// Manager allocates head-group cache blocks on one device.
type Manager struct {
	cfg         Config
	totalBlocks int
	freeBlocks  int
	reqs        map[RequestID]*entry
	nextArrival int64
	// Ops counters, used by the management-overhead experiment (Fig. 15b).
	storeOps int64
	fetchOps int64
}

// NewManager creates a manager with the given geometry.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.BlockTokens <= 0 {
		return nil, fmt.Errorf("kvcache: BlockTokens must be positive, got %d", cfg.BlockTokens)
	}
	if cfg.BytesPerGroupToken <= 0 {
		return nil, fmt.Errorf("kvcache: BytesPerGroupToken must be positive, got %d", cfg.BytesPerGroupToken)
	}
	if cfg.CapacityBytes < 0 {
		return nil, fmt.Errorf("kvcache: negative capacity %d", cfg.CapacityBytes)
	}
	return &Manager{
		cfg:         cfg,
		totalBlocks: int(cfg.CapacityBytes / cfg.BlockBytes()),
		freeBlocks:  int(cfg.CapacityBytes / cfg.BlockBytes()),
		reqs:        make(map[RequestID]*entry),
	}, nil
}

// Config returns the manager geometry.
func (m *Manager) Config() Config { return m.cfg }

// TotalBlocks is the device block capacity.
func (m *Manager) TotalBlocks() int { return m.totalBlocks }

// FreeBlocks is the number of unallocated blocks.
func (m *Manager) FreeBlocks() int { return m.freeBlocks }

// UsedBlocks is the number of allocated blocks.
func (m *Manager) UsedBlocks() int { return m.totalBlocks - m.freeBlocks }

// UsedBytes is the allocated cache volume.
func (m *Manager) UsedBytes() int64 { return int64(m.UsedBlocks()) * m.cfg.BlockBytes() }

// FreeBytes is the unallocated cache volume.
func (m *Manager) FreeBytes() int64 { return int64(m.freeBlocks) * m.cfg.BlockBytes() }

// CapacityBytes is the total cache volume the device can hold.
func (m *Manager) CapacityBytes() int64 { return int64(m.totalBlocks) * m.cfg.BlockBytes() }

// Utilization is UsedBlocks/TotalBlocks in [0,1].
func (m *Manager) Utilization() float64 {
	if m.totalBlocks == 0 {
		return 0
	}
	return float64(m.UsedBlocks()) / float64(m.totalBlocks)
}

// blocksFor computes the blocks needed by groups × tokens.
func (m *Manager) blocksFor(groups, tokens int) int {
	perGroup := (tokens + m.cfg.BlockTokens - 1) / m.cfg.BlockTokens
	return groups * perGroup
}

// CanAlloc reports whether groups head groups with tokens of context fit.
func (m *Manager) CanAlloc(groups, tokens int) bool {
	return m.blocksFor(groups, tokens) <= m.freeBlocks
}

// Alloc reserves cache for `groups` KV head groups of request id, each with
// `tokens` of context. A request may be allocated only once per device;
// use Extend to grow it or GrowGroups to add head groups.
func (m *Manager) Alloc(id RequestID, groups, tokens int) error {
	if groups <= 0 || tokens < 0 {
		return fmt.Errorf("kvcache: invalid allocation groups=%d tokens=%d", groups, tokens)
	}
	if _, exists := m.reqs[id]; exists {
		return fmt.Errorf("kvcache: request %d already allocated on device", id)
	}
	need := m.blocksFor(groups, tokens)
	if need > m.freeBlocks {
		return fmt.Errorf("%w: need %d blocks, %d free", ErrNoSpace, need, m.freeBlocks)
	}
	m.freeBlocks -= need
	m.reqs[id] = &entry{groups: groups, tokens: tokens, blocks: need, arrival: m.nextArrival}
	m.nextArrival++
	m.storeOps += int64(groups) // one block-table insert per head group
	return nil
}

// Extend grows request id by n tokens across all its head groups,
// allocating new blocks when a group's last block fills up.
func (m *Manager) Extend(id RequestID, n int) error {
	e, ok := m.reqs[id]
	if !ok {
		return fmt.Errorf("kvcache: request %d not on device", id)
	}
	if n < 0 {
		return fmt.Errorf("kvcache: negative extension %d", n)
	}
	newBlocks := m.blocksFor(e.groups, e.tokens+n)
	delta := newBlocks - e.blocks
	if delta > m.freeBlocks {
		return fmt.Errorf("%w: extension needs %d blocks, %d free", ErrNoSpace, delta, m.freeBlocks)
	}
	m.freeBlocks -= delta
	e.tokens += n
	e.blocks = newBlocks
	m.storeOps += int64(e.groups) // per-group append
	return nil
}

// GrowGroups adds extra head groups at the request's current context
// length (used when re-dispatching moves heads onto this device).
func (m *Manager) GrowGroups(id RequestID, extra int) error {
	e, ok := m.reqs[id]
	if !ok {
		return fmt.Errorf("kvcache: request %d not on device", id)
	}
	if extra <= 0 {
		return fmt.Errorf("kvcache: GrowGroups needs positive extra, got %d", extra)
	}
	newBlocks := m.blocksFor(e.groups+extra, e.tokens)
	delta := newBlocks - e.blocks
	if delta > m.freeBlocks {
		return fmt.Errorf("%w: growth needs %d blocks, %d free", ErrNoSpace, delta, m.freeBlocks)
	}
	m.freeBlocks -= delta
	e.groups += extra
	e.blocks = newBlocks
	m.storeOps += int64(extra)
	return nil
}

// ShrinkGroups removes head groups from the request, freeing their blocks.
// Removing all groups frees the request entirely.
func (m *Manager) ShrinkGroups(id RequestID, removed int) error {
	e, ok := m.reqs[id]
	if !ok {
		return fmt.Errorf("kvcache: request %d not on device", id)
	}
	if removed <= 0 || removed > e.groups {
		return fmt.Errorf("kvcache: cannot remove %d of %d groups", removed, e.groups)
	}
	if removed == e.groups {
		m.Free(id)
		return nil
	}
	newBlocks := m.blocksFor(e.groups-removed, e.tokens)
	m.freeBlocks += e.blocks - newBlocks
	e.groups -= removed
	e.blocks = newBlocks
	return nil
}

// Free releases everything request id holds on this device. Freeing an
// absent request is a no-op.
func (m *Manager) Free(id RequestID) {
	e, ok := m.reqs[id]
	if !ok {
		return
	}
	m.freeBlocks += e.blocks
	delete(m.reqs, id)
}

// Has reports whether the request holds blocks here.
func (m *Manager) Has(id RequestID) bool {
	_, ok := m.reqs[id]
	return ok
}

// Groups returns the number of head groups request id holds here (0 if
// absent).
func (m *Manager) Groups(id RequestID) int {
	if e, ok := m.reqs[id]; ok {
		return e.groups
	}
	return 0
}

// Tokens returns the context length request id holds here (0 if absent).
func (m *Manager) Tokens(id RequestID) int {
	if e, ok := m.reqs[id]; ok {
		return e.tokens
	}
	return 0
}

// BytesOf is the exact byte footprint of request id on this device.
func (m *Manager) BytesOf(id RequestID) int64 {
	if e, ok := m.reqs[id]; ok {
		return int64(e.blocks) * m.cfg.BlockBytes()
	}
	return 0
}

// Fetch records a cache read of the request (decode step touching all its
// groups) for the op-count accounting of Fig. 15(b).
func (m *Manager) Fetch(id RequestID) {
	if e, ok := m.reqs[id]; ok {
		m.fetchOps += int64(e.groups)
	}
}

// StoreOps and FetchOps expose the management-op counters.
func (m *Manager) StoreOps() int64 { return m.storeOps }

// FetchOps reports accumulated fetch (block-indexing) operations.
func (m *Manager) FetchOps() int64 { return m.fetchOps }

// Requests lists request IDs with blocks on this device, oldest first.
func (m *Manager) Requests() []RequestID {
	ids := make([]RequestID, 0, len(m.reqs))
	for id := range m.reqs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		return m.reqs[ids[i]].arrival < m.reqs[ids[j]].arrival
	})
	return ids
}

// VictimLIFO implements the paper's modified LIFO policy (§5.3.2): among
// requests that actually hold memory on THIS device, pick the one that
// arrived last. Returns false when the device is empty.
func (m *Manager) VictimLIFO() (RequestID, bool) {
	var best RequestID
	var bestArrival int64 = -1
	for id, e := range m.reqs {
		if e.arrival > bestArrival {
			bestArrival = e.arrival
			best = id
		}
	}
	return best, bestArrival >= 0
}

// CheckInvariants verifies internal accounting; tests call it after every
// mutation sequence.
func (m *Manager) CheckInvariants() error {
	used := 0
	for id, e := range m.reqs {
		if e.groups <= 0 {
			return fmt.Errorf("kvcache: request %d with %d groups", id, e.groups)
		}
		want := m.blocksFor(e.groups, e.tokens)
		if e.blocks != want {
			return fmt.Errorf("kvcache: request %d holds %d blocks, want %d", id, e.blocks, want)
		}
		used += e.blocks
	}
	if used+m.freeBlocks != m.totalBlocks {
		return fmt.Errorf("kvcache: leak: used %d + free %d != total %d", used, m.freeBlocks, m.totalBlocks)
	}
	return nil
}
