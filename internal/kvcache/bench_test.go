package kvcache

import "testing"

// BenchmarkAllocExtendFree measures the block-manager hot path: one
// request's lifecycle (alloc, 256 decode extends, free).
func BenchmarkAllocExtendFree(b *testing.B) {
	cfg := Config{BlockTokens: 16, BytesPerGroupToken: 20480, CapacityBytes: 8 << 30}
	m, err := NewManager(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := RequestID(i)
		if err := m.Alloc(id, 8, 512); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 256; k++ {
			if err := m.Extend(id, 1); err != nil {
				b.Fatal(err)
			}
		}
		m.Free(id)
	}
}

// BenchmarkPlanMigration measures the Hauler's overlap-aware planning.
func BenchmarkPlanMigration(b *testing.B) {
	old := map[int]int{0: 12, 1: 4, 2: 0, 3: 8}
	new := map[int]int{0: 4, 1: 8, 2: 8, 3: 4}
	for i := 0; i < b.N; i++ {
		if _, err := PlanMigration(old, new, 1500, 20480); err != nil {
			b.Fatal(err)
		}
	}
}
