module hetis

go 1.24
