// Chatbot: sweep a ShareGPT-like workload across request rates and compare
// Hetis against the Splitwise and HexGen baselines — a miniature of the
// paper's Fig. 8 experiment, printed as latency-vs-rate series.
package main

import (
	"fmt"
	"log"

	"hetis"
)

func main() {
	cluster := hetis.PaperCluster()
	m := hetis.Llama13B
	cfg := hetis.DefaultEngineConfig(m, cluster)
	const dur = 40.0

	fmt.Printf("%-10s %-14s %-14s %-14s\n", "rate", "splitwise", "hexgen", "hetis")
	for _, rate := range []float64{3, 6, 9, 12} {
		reqs := hetis.PoissonTrace(hetis.ShareGPT, rate, dur, int64(rate*100))

		plan, err := hetis.PlanDeployment(cfg, reqs)
		if err != nil {
			log.Fatal(err)
		}
		het, err := hetis.NewHetisEngine(cfg, plan)
		if err != nil {
			log.Fatal(err)
		}
		sw, err := hetis.NewSplitwiseEngine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		hx, err := hetis.NewHexGenEngine(cfg)
		if err != nil {
			log.Fatal(err)
		}

		norm := func(e hetis.Engine) string {
			res, err := e.Run(reqs, dur*30)
			if err != nil {
				log.Fatal(err)
			}
			return fmt.Sprintf("%6.1f ms/tok", res.Recorder.NormLatencySummary().Mean*1e3)
		}
		fmt.Printf("%-10.0f %-14s %-14s %-14s\n", rate, norm(sw), norm(hx), norm(het))
	}
	fmt.Println("\nlower is better; Hetis holds low latency as the rate grows by")
	fmt.Println("spilling decode attention onto the pooled P100 attention workers.")
}
