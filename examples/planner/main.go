// Planner: explore how the §4.1 hierarchical search adapts deployments to
// the model and the cluster shape — which GPUs serve dense modules, which
// are demoted to attention workers, and what that does to KV capacity.
package main

import (
	"fmt"
	"log"

	"hetis"
)

func main() {
	clusters := []struct {
		name string
		c    *hetis.Cluster
	}{
		{"paper (4xA100 + 4x3090 + 4xP100)", hetis.PaperCluster()},
		{"budget (2xA100 + 8xT4)", mustCluster(
			hetis.NewClusterBuilder(hetis.LAN100G).
				AddHost("a100", hetis.NVLink3, hetis.A100, 2).
				AddHost("t4-0", hetis.PCIe3x16, hetis.T4, 4).
				AddHost("t4-1", hetis.PCIe3x16, hetis.T4, 4).
				Build()),
		},
		{"mixed (2xH100 + 4xV100 + 4xL4)", mustCluster(
			hetis.NewClusterBuilder(hetis.LAN100G).
				AddHost("h100", hetis.NVLink3, hetis.H100, 2).
				AddHost("v100", hetis.NVLink3, hetis.V100, 4).
				AddHost("l4", hetis.PCIe4x16, hetis.L4, 4).
				Build()),
		},
	}
	models := []hetis.ModelConfig{hetis.Llama13B, hetis.OPT30B, hetis.Llama70B}

	wl := hetis.PlanWorkload{DecodeBatch: 48, AvgContext: 600, PrefillBatch: 4, AvgPrompt: 400, AvgOutput: 240}
	for _, cl := range clusters {
		fmt.Printf("=== %s ===\n", cl.name)
		for _, m := range models {
			plan, err := hetis.SearchPlan(cl.c, m, wl, hetis.DefaultPlanOptions())
			if err != nil {
				fmt.Printf("  %-10s infeasible: %v\n", m.Name, err)
				continue
			}
			fmt.Printf("  %-10s %d instance(s), %d attention workers, %5.0f GB cache, decode step %5.1f ms (searched %d configs in %v)\n",
				m.Name, len(plan.Instances), plan.NumAttentionWorkers(),
				float64(plan.CacheCapacity)/1e9, plan.DecodeStepCost*1e3,
				plan.Evaluated, plan.Elapsed)
			for _, in := range plan.Instances[:1] {
				for _, st := range in.Stages {
					fmt.Printf("             stage %-5s x%d  %2d layers  TP=%d PP=%d\n",
						st.Spec.Name, len(st.Devices), st.Layers, st.TP, st.PP)
				}
			}
		}
		fmt.Println()
	}
}

func mustCluster(c *hetis.Cluster, err error) *hetis.Cluster {
	if err != nil {
		log.Fatal(err)
	}
	return c
}
