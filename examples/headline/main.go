// Headline: the abstract's throughput claim, live, in the setting the
// paper's introduction motivates — premium GPUs are scarce (one A100) and
// the cluster is padded with leftovers (four 3090s, four P100s). Ladders
// the request rate and prints where each of the four systems — Hetis,
// Splitwise, HexGen, and a vLLM reference using only the lone A100 —
// stops sustaining the latency SLO.
package main

import (
	"fmt"
	"log"

	"hetis"
)

const slo = 0.25 // seconds per output token

func main() {
	m := hetis.Llama13B
	const dur = 40.0
	rates := []float64{3, 6, 9, 12, 15, 18}

	fmt.Printf("%-8s %-12s %-12s %-12s %-12s  (mean s/token; X = SLO %.2f missed)\n",
		"rate", "vllm-a100", "splitwise", "hexgen", "hetis", slo)

	for _, rate := range rates {
		reqs := hetis.PoissonTrace(hetis.ShareGPT, rate, dur, int64(500+rate))
		cluster, err := hetis.NewClusterBuilder(hetis.LAN100G).
			AddHost("a100", hetis.PCIe4x16, hetis.A100, 1).
			AddHost("3090-0", hetis.PCIe3x16, hetis.RTX3090, 2).
			AddHost("3090-1", hetis.PCIe3x16, hetis.RTX3090, 2).
			AddHost("p100", hetis.PCIe3x16, hetis.P100, 4).
			Build()
		if err != nil {
			log.Fatal(err)
		}
		cfg := hetis.DefaultEngineConfig(m, cluster)

		engines := map[string]hetis.Engine{}
		if engines["vllm-a100"], err = hetis.NewVLLMEngine(cfg); err != nil {
			log.Fatal(err)
		}
		if engines["splitwise"], err = hetis.NewSplitwiseEngine(cfg); err != nil {
			log.Fatal(err)
		}
		if engines["hexgen"], err = hetis.NewHexGenEngine(cfg); err != nil {
			log.Fatal(err)
		}
		// Use the extended primary-set search (comm-aware tier selection);
		// see the ablation-search experiment for its effect.
		popts := hetis.DefaultPlanOptions()
		popts.ExtendedSearch = true
		wl := hetis.PlanWorkload{DecodeBatch: 48, AvgContext: 600, PrefillBatch: 4, AvgPrompt: 400, AvgOutput: 240}
		plan, err := hetis.SearchPlan(cluster, m, wl, popts)
		if err != nil {
			log.Fatal(err)
		}
		if engines["hetis"], err = hetis.NewHetisEngine(cfg, plan); err != nil {
			log.Fatal(err)
		}

		cell := func(name string) string {
			res, err := engines[name].Run(reqs, dur*8)
			if err != nil {
				log.Fatal(err)
			}
			lat := res.Recorder.NormLatencySummary().Mean
			mark := ""
			if lat > slo || res.Completed < len(reqs) {
				mark = " X"
			}
			return fmt.Sprintf("%.3f%s", lat, mark)
		}
		fmt.Printf("%-8.0f %-12s %-12s %-12s %-12s\n",
			rate, cell("vllm-a100"), cell("splitwise"), cell("hexgen"), cell("hetis"))
	}
	fmt.Println("\nWith premium GPUs scarce, the lone-A100 reference hits its KV-cache")
	fmt.Println("ceiling first; Hetis keeps the SLO deepest into the ladder by pooling")
	fmt.Println("the leftovers' memory and attention compute (paper: up to 2.25x rate).")
}
