// Quickstart: serve a small chat workload on the paper's heterogeneous
// cluster with Hetis and print the headline latency metrics.
package main

import (
	"fmt"
	"log"

	"hetis"
)

func main() {
	// The paper's evaluation cluster: 4×A100-80GB, 4×RTX 3090 (two hosts),
	// 4×P100, joined by 100 GbE.
	cluster := hetis.PaperCluster()
	fmt.Println("cluster:", cluster)

	// A 60-second ShareGPT-like chat trace at 5 requests/second.
	reqs := hetis.PoissonTrace(hetis.ShareGPT, 5, 60, 42)
	fmt.Printf("trace:   %d requests\n", len(reqs))

	// Plan the deployment: the Parallelizer picks primary workers for the
	// dense modules and demotes cost-ineffective GPUs to the shared
	// Attention-worker pool.
	cfg := hetis.DefaultEngineConfig(hetis.Llama13B, cluster)
	plan, err := hetis.PlanDeployment(cfg, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan:    %d instance(s), %d attention workers, %.0f GB KV capacity\n",
		len(plan.Instances), plan.NumAttentionWorkers(), float64(plan.CacheCapacity)/1e9)

	// Serve the trace.
	eng, err := hetis.NewHetisEngine(cfg, plan)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(reqs, 0)
	if err != nil {
		log.Fatal(err)
	}

	ttft := res.Recorder.TTFTSummary()
	tpot := res.Recorder.TPOTSummary()
	norm := res.Recorder.NormLatencySummary()
	fmt.Printf("\nserved %d requests in %.1f simulated seconds (%.2f req/s)\n",
		res.Completed, res.Horizon, res.Throughput())
	fmt.Printf("TTFT   mean %6.1f ms   p95 %6.1f ms\n", ttft.Mean*1e3, ttft.P95*1e3)
	fmt.Printf("TPOT   mean %6.1f ms   p95 %6.1f ms\n", tpot.Mean*1e3, tpot.P95*1e3)
	fmt.Printf("norm   mean %6.1f ms/token\n", norm.Mean*1e3)
	fmt.Printf("peak cache used: %.1f GB, evictions: %d, head migrations: %d\n",
		float64(res.PeakCacheUsed)/1e9, res.Evictions, res.Migrations)
}
