// Summarization: serve a LongBench-like long-context workload on a small,
// memory-constrained cluster and watch Hetis' §5.3 machinery — head
// re-dispatching, cache migration, and device-aware eviction — keep the
// cluster serving. Also contrasts against the plain-LIFO ablation.
package main

import (
	"fmt"
	"log"

	"hetis"
)

func main() {
	// One A100 primary, two RTX 3090 attention workers: the Fig. 14/15
	// ablation setup, where long contexts exhaust memory quickly.
	cluster, err := hetis.NewClusterBuilder(hetis.LAN100G).
		AddHost("a100", hetis.PCIe4x16, hetis.A100, 1).
		AddHost("3090-a", hetis.PCIe3x16, hetis.RTX3090, 1).
		AddHost("3090-b", hetis.PCIe3x16, hetis.RTX3090, 1).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	reqs := hetis.PoissonTrace(hetis.LongBench, 1.5, 60, 7)
	fmt.Printf("cluster: %s\ntrace:   %d long-context requests\n\n", cluster, len(reqs))

	run := func(disableRedispatch bool) *hetis.Result {
		cfg := hetis.DefaultEngineConfig(hetis.Llama13B, cluster)
		cfg.DisableRedispatch = disableRedispatch
		plan, err := hetis.PlanDeployment(cfg, reqs)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := hetis.NewHetisEngine(cfg, plan)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(reqs, 3600)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	full := run(false)
	lifo := run(true)

	show := func(name string, r *hetis.Result) {
		n := r.Recorder.NormLatencySummary()
		fmt.Printf("%-18s mean %6.1f ms/tok  p95 %6.1f ms/tok  evictions %3d  migrations %3d (%.1f GB moved)\n",
			name, n.Mean*1e3, n.P95*1e3, r.Evictions, r.Migrations, float64(r.MigratedBytes)/1e9)
	}
	show("hetis (§5.3 on)", full)
	show("plain LIFO", lifo)

	fmt.Println("\nre-dispatching relocates the newest request's attention heads to")
	fmt.Println("devices with slack instead of discarding its KV cache, so fewer")
	fmt.Println("requests pay the recomputation penalty.")
}
