// Package hetis is a faithful, simulation-backed reproduction of
// "Hetis: Serving LLMs in Heterogeneous GPU Clusters with Fine-grained and
// Dynamic Parallelism" (SC '25). It provides:
//
//   - a calibrated analytic performance model of heterogeneous GPU clusters
//     (A100 / RTX 3090 / P100 and more) and their interconnects;
//   - the Hetis scheduling stack — the hierarchical primary-worker
//     parallelism search (§4.1), dynamic head-wise Attention parallelism
//     (§4.2), profiled linear cost models (§5.1), the online head
//     dispatching LP (§5.2) and re-dispatching (§5.3), and head-granular
//     KV-cache management (§6);
//   - the Splitwise and HexGen baselines of the paper's evaluation;
//   - iteration-level serving simulators that replay request traces and
//     report TTFT, TPOT, and normalized latency;
//   - every table and figure of §7 as a runnable experiment.
//
// The API below re-exports the stable surface of the internal packages.
// Construct a cluster, pick a model, plan a deployment, build an engine,
// and run a workload:
//
//	cluster := hetis.PaperCluster()
//	cfg := hetis.DefaultEngineConfig(hetis.Llama13B, cluster)
//	reqs := hetis.PoissonTrace(hetis.ShareGPT, 5, 60, 1)
//	plan, _ := hetis.PlanDeployment(cfg, reqs)
//	eng, _ := hetis.NewHetisEngine(cfg, plan)
//	res, _ := eng.Run(reqs, 0)
//	fmt.Printf("completed %d/%d requests, p95 TTFT %.2fs\n",
//		res.Completed, len(reqs), res.Recorder.TTFTSummary().P95)
//
// (The package Example keeps this snippet compiling and verifies its
// output.) Sweeps over {model × dataset × rate × engine} grids and pooled
// experiment runs live behind RunGrid and RunExperiments; the hetisbench
// command is their CLI.
package hetis

import (
	"hetis/internal/bench"
	"hetis/internal/engine"
	"hetis/internal/experiments"
	"hetis/internal/fleet"
	"hetis/internal/hardware"
	"hetis/internal/metrics"
	"hetis/internal/model"
	"hetis/internal/parallelizer"
	"hetis/internal/profile"
	"hetis/internal/scenario"
	"hetis/internal/sweep"
	"hetis/internal/workload"
)

// --- Hardware ----------------------------------------------------------------

// GPUSpec describes one GPU model's capability.
type GPUSpec = hardware.GPUSpec

// LinkSpec is an alpha-beta communication channel.
type LinkSpec = hardware.LinkSpec

// Cluster is an immutable heterogeneous GPU cluster description.
type Cluster = hardware.Cluster

// ClusterBuilder assembles clusters host by host.
type ClusterBuilder = hardware.Builder

// DeviceID identifies a GPU within a cluster.
type DeviceID = hardware.DeviceID

// GPU presets (datasheet capabilities calibrated against the paper's
// Table 1 where applicable).
var (
	A100    = hardware.A100
	H100    = hardware.H100
	V100    = hardware.V100
	A40     = hardware.A40
	RTX3090 = hardware.RTX3090
	L4      = hardware.L4
	T4      = hardware.T4
	P100    = hardware.P100
)

// Interconnect presets.
var (
	LAN100G  = hardware.LAN100G
	LAN25G   = hardware.LAN25G
	PCIe3x16 = hardware.PCIe3x16
	PCIe4x16 = hardware.PCIe4x16
	NVLink3  = hardware.NVLink3
)

// NewClusterBuilder starts a cluster joined by the given inter-host link.
func NewClusterBuilder(inter LinkSpec) *ClusterBuilder {
	return hardware.NewBuilder(inter)
}

// PaperCluster reproduces the paper's evaluation cluster: 4×A100-80GB,
// 2×2×RTX 3090, 4×P100 over 100 GbE.
func PaperCluster() *Cluster { return hardware.PaperCluster() }

// GPUByName resolves a preset GPU spec by name ("A100", "3090", "P100", …).
func GPUByName(name string) (GPUSpec, error) { return hardware.SpecByName(name) }

// --- Models -------------------------------------------------------------------

// ModelConfig describes a transformer architecture.
type ModelConfig = model.Config

// Model presets used in the paper's evaluation.
var (
	OPT27B   = model.OPT27B
	OPT13B   = model.OPT13B
	OPT30B   = model.OPT30B
	Llama13B = model.Llama13B
	Llama70B = model.Llama70B
)

// ModelByName resolves a preset model ("Llama-70B", "OPT-30B", …).
func ModelByName(name string) (ModelConfig, error) { return model.ByName(name) }

// --- Workloads ----------------------------------------------------------------

// Request is one inference request of a trace.
type Request = workload.Request

// Dataset is a token-length distribution standing in for a serving corpus.
type Dataset = workload.LengthDist

// RateSegment is one phase of a piecewise-constant arrival process.
type RateSegment = workload.RateSegment

// Dataset presets matching the paper's three applications.
var (
	ShareGPT  = workload.ShareGPT  // chatbot
	HumanEval = workload.HumanEval // code completion
	LongBench = workload.LongBench // summarization
)

// DatasetByName resolves "ShareGPT"/"SG", "HumanEval"/"HE", "LongBench"/"LB".
func DatasetByName(name string) (Dataset, error) { return workload.ByName(name) }

// PoissonTrace generates a trace at `rate` requests/second for `duration`
// simulated seconds with the given seed.
func PoissonTrace(d Dataset, rate, duration float64, seed int64) []Request {
	return workload.Poisson(d, rate, duration, seed)
}

// PiecewiseTrace generates a trace whose rate steps through segments.
func PiecewiseTrace(d Dataset, segments []RateSegment, seed int64) []Request {
	return workload.PiecewiseRate(d, segments, seed)
}

// --- Planning -----------------------------------------------------------------

// Plan is a deployment produced by the Parallelizer: primary-worker stages
// plus the Attention-worker pool, per data-parallel instance.
type Plan = parallelizer.Plan

// PlanWorkload describes the request distribution R the Parallelizer
// optimizes for.
type PlanWorkload = parallelizer.Workload

// PlanOptions tunes the hierarchical search (Δ, memory headroom, …).
type PlanOptions = parallelizer.Options

// DefaultPlanOptions mirrors the paper (Δ = 0.05).
func DefaultPlanOptions() PlanOptions { return parallelizer.DefaultOptions() }

// SearchPlan runs the §4.1 hierarchical search directly.
func SearchPlan(cluster *Cluster, m ModelConfig, wl PlanWorkload, opts PlanOptions) (*Plan, error) {
	return parallelizer.Search(cluster, newEstimator(m), wl, opts)
}

// PlanDeployment plans Hetis for a trace's aggregate statistics.
func PlanDeployment(cfg EngineConfig, reqs []Request) (*Plan, error) {
	return engine.PlanForWorkload(cfg, reqs)
}

// --- Engines ------------------------------------------------------------------

// EngineConfig carries the runtime knobs shared by all serving engines.
type EngineConfig = engine.Config

// Result is what a serving run produces: the latency recorder, cache
// statistics, per-module latencies and the event trace.
type Result = engine.Result

// Engine is a runnable serving-system simulation.
type Engine = engine.Engine

// HetisEngine is the paper's system.
type HetisEngine = engine.Hetis

// SplitwiseEngine is the phase-splitting baseline.
type SplitwiseEngine = engine.Splitwise

// HexGenEngine is the static parameter-splitting baseline.
type HexGenEngine = engine.HexGen

// Profile carries the fitted Eq. 3 / Eq. 4 models.
type Profile = profile.Profile

// DefaultEngineConfig returns the standard configuration for a model on a
// cluster (Θ = 0.5, vLLM-like batching limits).
func DefaultEngineConfig(m ModelConfig, cluster *Cluster) EngineConfig {
	return engine.DefaultConfig(m, cluster)
}

// NewHetisEngine builds the Hetis engine from a deployment plan.
func NewHetisEngine(cfg EngineConfig, plan *Plan) (*HetisEngine, error) {
	return engine.NewHetis(cfg, plan)
}

// NewSplitwiseEngine builds the Splitwise baseline.
func NewSplitwiseEngine(cfg EngineConfig) (*SplitwiseEngine, error) {
	return engine.NewSplitwise(cfg)
}

// NewHexGenEngine builds the HexGen baseline.
func NewHexGenEngine(cfg EngineConfig) (*HexGenEngine, error) {
	return engine.NewHexGen(cfg)
}

// --- Metrics ------------------------------------------------------------------

// Summary holds order statistics of a latency metric.
type Summary = metrics.Summary

// Table is an aligned text table, the output format of experiments.
type Table = metrics.Table

// MetricsSink consumes finished-request records as engines emit them; set
// EngineConfig.Sink to swap the measurement path.
type MetricsSink = metrics.Sink

// MetricsSnapshot is the uniform aggregate view every sink produces.
type MetricsSnapshot = metrics.Snapshot

// ExactRecorder stores every record (exact summaries, O(n) memory) — the
// default sink and the one golden traces pin.
type ExactRecorder = metrics.ExactRecorder

// StreamingSink summarizes the stream in constant memory: running
// mean/min/max/count, exact SLO attainment, and relative-error quantile
// sketches for TTFT/TPOT/normalized latency.
type StreamingSink = metrics.StreamingSink

// WindowedSeries buckets completions into fixed-width time windows —
// the streaming counterpart of the dynamic-behaviour plots.
type WindowedSeries = metrics.WindowedSeries

// WindowStat is one bucket of a WindowedSeries.
type WindowStat = metrics.WindowStat

// TenantMux fans records out per tenant for multi-tenant attribution.
type TenantMux = metrics.TenantMux

// SinkTee fans every record out to several sinks.
type SinkTee = metrics.Tee

// NewExactRecorder returns the store-everything sink; slo tunes what its
// snapshot counts as attained.
func NewExactRecorder(slo SLOTarget) *ExactRecorder { return metrics.NewExactRecorder(slo) }

// NewStreamingSink returns a constant-memory sink measuring attainment
// against slo.
func NewStreamingSink(slo SLOTarget) *StreamingSink { return metrics.NewStreamingSink(slo) }

// NewWindowedSeries returns a windowed-series sink with the given bucket
// width in simulated seconds.
func NewWindowedSeries(window float64, slo SLOTarget) *WindowedSeries {
	return metrics.NewWindowedSeries(window, slo)
}

// NewTenantMux fans records to agg plus a lazily created per-tenant sink.
func NewTenantMux(agg MetricsSink, make func(tenant string) MetricsSink) *TenantMux {
	return metrics.NewTenantMux(agg, make)
}

// NewSinkTee builds a tee over primary plus further sinks; Snapshot
// follows primary.
func NewSinkTee(primary MetricsSink, rest ...MetricsSink) *SinkTee {
	return metrics.NewTee(primary, rest...)
}

// --- Experiments ----------------------------------------------------------------

// ExperimentOptions tunes experiment scale (Quick shrinks traces, Seed
// offsets the built-in trace seeds for independent replicas).
type ExperimentOptions = experiments.Options

// ExperimentIDs lists the registered paper experiments (table1, fig2, …).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's tables/figures by id.
func RunExperiment(id string, opts ExperimentOptions) (*Table, error) {
	return experiments.Run(id, opts)
}

// --- Sweeps -------------------------------------------------------------------

// SweepOptions bounds a worker pool (Jobs; 0 = NumCPU) and optionally
// shares a memo cache across runs.
type SweepOptions = sweep.Options

// SweepCache memoizes traces, plans and profile fits across pooled runs.
type SweepCache = sweep.Cache

// SweepResult is one pooled run's keyed outcome.
type SweepResult = sweep.Result

// GridSpec describes a {model × dataset × rate × engine} sweep.
type GridSpec = sweep.GridSpec

// GridPoint is one grid coordinate.
type GridPoint = sweep.Point

// NewSweepCache returns an empty shared memo cache.
func NewSweepCache() *SweepCache { return sweep.NewCache() }

// SweepEngines lists the engine names a grid may reference.
func SweepEngines() []string { return append([]string(nil), sweep.Engines...) }

// RunGrid sweeps the grid on a bounded worker pool; the merged table
// follows grid order independent of completion order, byte-identical for
// any job count.
func RunGrid(spec GridSpec, opts SweepOptions) (*Table, error) {
	return sweep.RunGrid(spec, opts)
}

// ParseGridDims folds "key=v1,v2,..." dimension specs (engine, dataset,
// rate, model, duration, seed) into a GridSpec.
func ParseGridDims(spec GridSpec, dims []string) (GridSpec, error) {
	return sweep.ParseDims(spec, dims)
}

// RunExperiments executes several paper experiments concurrently on the
// pool, results ordered by id.
func RunExperiments(ids []string, opts ExperimentOptions, pool SweepOptions) ([]SweepResult, error) {
	return experiments.RunMany(ids, opts, pool)
}

// RunAllExperiments pools every registered experiment, in id order.
func RunAllExperiments(opts ExperimentOptions, pool SweepOptions) ([]SweepResult, error) {
	return experiments.RunAll(opts, pool)
}

// VLLMEngine is the homogeneous reference: vLLM-style tensor-parallel
// serving on the cluster's top GPU tier only, ignoring low-end devices.
type VLLMEngine = engine.VLLM

// NewVLLMEngine builds the homogeneous reference engine.
func NewVLLMEngine(cfg EngineConfig) (*VLLMEngine, error) {
	return engine.NewVLLM(cfg)
}

// EngineNames lists the buildable serving engines in comparison order.
func EngineNames() []string { return append([]string(nil), engine.Names...) }

// NewEngineByName builds the named engine ("hetis", "hexgen",
// "splitwise", "vllm") for the config, planning Hetis for the trace (the
// other engines ignore it).
func NewEngineByName(name string, cfg EngineConfig, reqs []Request) (Engine, error) {
	return engine.NewByName(name, cfg, reqs)
}

// TruncateTrace clamps every request of a trace to a model context window
// (what serving front-ends do to oversized prompts). Engines already apply
// this internally; the helper is for workload analysis.
func TruncateTrace(reqs []Request, maxSeqLen int) []Request {
	return workload.Truncate(reqs, maxSeqLen)
}

// --- Scenarios ----------------------------------------------------------------

// Scenario is a declarative serving scenario: traffic shape, multi-tenant
// workload mix, latency SLO, deployment, and engines.
type Scenario = scenario.Spec

// ScenarioTraffic declaratively describes an arrival process (poisson,
// mmpp, diurnal, flashcrowd, closedloop).
type ScenarioTraffic = scenario.Traffic

// ScenarioOptions tunes a scenario run.
type ScenarioOptions = scenario.Options

// SLOTarget is a latency service objective (TTFT/TPOT ceilings); requests
// meeting it count toward goodput.
type SLOTarget = metrics.SLOTarget

// TenantStats is one tenant's slice of a run: completions, SLO attainment,
// goodput, and latency summaries.
type TenantStats = metrics.TenantStats

// MixEntry is one tenant of a multi-tenant workload mix.
type MixEntry = workload.MixEntry

// MMPPState is one phase of a cyclic Markov-modulated (bursty) Poisson
// arrival process.
type MMPPState = workload.MMPPState

// ScenarioFailure is one replica failure window of a chaotic scenario;
// Start and End are fractions of the trace duration.
type ScenarioFailure = scenario.FailureEvent

// ScenarioAutoscale is the SLO-driven replica controller of a chaotic
// scenario; Interval and Lag are fractions of the trace duration.
type ScenarioAutoscale = scenario.AutoscaleSpec

// ScenarioTier is one priority class of a tiered scenario: its tenants,
// preemption priority, and optional admission cap.
type ScenarioTier = scenario.TierSpec

// ScenarioFleet shards a scenario across independent cluster replicas
// behind a deterministic front-door router; the shards run concurrently
// and merge in shard-index order, so output is byte-identical at any
// worker count (SweepOptions.ShardWorkers).
type ScenarioFleet = scenario.FleetSpec

// Fleet routing policies: smooth weighted round-robin, least assigned
// prompt+output tokens, and FNV-1a tenant affinity.
const (
	FleetPolicyWeighted    = fleet.PolicyWeighted
	FleetPolicyLeastLoaded = fleet.PolicyLeastLoaded
	FleetPolicyAffinity    = fleet.PolicyAffinity
)

// FleetPolicies lists the routing policies in registration order.
func FleetPolicies() []string { return fleet.Policies() }

// DefaultSLO is the objective scenarios inherit when they set none.
var DefaultSLO = scenario.DefaultSLO

// ScenarioNames lists the registered scenarios in sorted order.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioSuiteNames lists the non-heavy scenarios "all"-style expansions
// run; heavy scenarios (megascale) run when named explicitly.
func ScenarioSuiteNames() []string { return scenario.SuiteNames() }

// ScenarioByName resolves a registered scenario.
func ScenarioByName(name string) (Scenario, error) { return scenario.ByName(name) }

// RegisterScenario adds a scenario to the catalog.
func RegisterScenario(s Scenario) error { return scenario.Register(s) }

// RunScenario serves one scenario on every engine it names.
func RunScenario(s Scenario, opts ScenarioOptions) (*Table, error) {
	return scenario.Run(s, opts)
}

// RunScenarios serves the named scenarios (or the non-heavy catalog, for
// ["all"]) on a bounded worker pool; the merged table follows catalog
// order, byte-identical for any job count.
func RunScenarios(names []string, quick bool, seed int64, pool SweepOptions) (*Table, error) {
	return sweep.RunScenarios(names, quick, seed, pool)
}

// ScenarioWindows is one (scenario, engine) run's windowed time series.
type ScenarioWindows = sweep.ScenarioWindows

// RunScenariosStream is RunScenarios through constant-memory streaming
// sinks — the mode million-request scenarios (megascale) are built for.
// window > 0 additionally returns each pair's windowed time series in pair
// order.
func RunScenariosStream(names []string, quick bool, seed int64, window float64, pool SweepOptions) (*Table, []ScenarioWindows, error) {
	return sweep.RunScenariosSink(names, quick, seed, true, window, pool)
}

// Bursty, diurnal, flash-crowd and closed-loop trace generators
// (single-tenant; use Scenario specs for mixed traffic).
var (
	MMPPTrace       = workload.MMPP
	DiurnalTrace    = workload.Diurnal
	FlashCrowdTrace = workload.FlashCrowd
	ClosedLoopTrace = workload.ClosedLoop
)

// --- Perf trajectory ----------------------------------------------------------

// BenchOptions tunes the perf-trajectory harness (scenario selection,
// Quick scale, repetitions).
type BenchOptions = bench.Options

// BenchReport is the BENCH.json document: suite and micro measurements
// plus an optional pre-optimization baseline.
type BenchReport = bench.Report

// BenchSuite aggregates the scenario-suite measurements of a report.
type BenchSuite = bench.Suite

// BenchSchemaVersion identifies the BENCH.json layout this build emits.
const BenchSchemaVersion = bench.SchemaVersion

// BenchSinkComparison is one sink-mode measurement of the report's
// exact-vs-streaming section (the recorded O(1)-memory proof).
type BenchSinkComparison = bench.SinkBench

// BenchFleetScaling is the report's shard-scaling section: the fleet
// scenario at increasing shard-worker counts, identical merged output on
// every row (the recorded proof that intra-run parallelism is free of
// nondeterminism).
type BenchFleetScaling = bench.FleetScaling

// RunBench times the canonical scenario suite (and micro-benchmarks) and
// assembles the perf report.
func RunBench(opts BenchOptions) (*BenchReport, error) { return bench.Run(opts) }

// BenchSamePairs reports whether two suites measured the same (scenario,
// engine) pairs — the precondition for a meaningful speedup ratio.
func BenchSamePairs(a, b *BenchSuite) bool { return bench.SamePairs(a, b) }

// WriteBenchReport writes a report as indented JSON.
func WriteBenchReport(path string, r *BenchReport) error { return bench.Write(path, r) }

// ReadBenchReport parses a BENCH.json document, checking its schema.
func ReadBenchReport(path string) (*BenchReport, error) { return bench.ReadFile(path) }
